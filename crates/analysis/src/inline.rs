//! Function inlining (§4.6.4 of the paper).
//!
//! Go's escape analysis benefits from inlining: an object that escapes a
//! small callee only via `return` can still be stack-allocated once the
//! callee is embedded in the caller. GoFree does *not* depend on inlining
//! — its extended parameter tags already model callee allocations — and
//! the `inlining` experiment binary demonstrates exactly that.
//!
//! The pass is a source-level transform: it replaces statement-position
//! calls to eligible callees with a block containing the renamed callee
//! body. The result has fresh ids and must be re-run through the resolver
//! and type checker (the [`crate::analyze()`](crate::analyze::analyze) pipeline does this via
//! `minigo_syntax::frontend` on the printed output's AST — callers use
//! [`inline_program`] and then treat the result as a brand-new program).

use std::collections::HashMap;

use minigo_syntax::{
    Block, BlockId, Expr, ExprId, ExprKind, Func, FuncId, Program, Stmt, StmtId, StmtKind,
    SwitchCase,
};

use crate::callgraph::CallGraph;

/// Inlining options.
#[derive(Debug, Clone)]
pub struct InlineOptions {
    /// Maximum number of statements in an inlinable callee.
    pub max_stmts: usize,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions { max_stmts: 12 }
    }
}

/// Statistics from one inlining pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InlineStats {
    /// Call sites replaced.
    pub inlined_calls: usize,
    /// Call sites left alone (ineligible callee or call shape).
    pub skipped_calls: usize,
}

/// Inlines eligible statement-position calls once (no transitive
/// inlining). Returns the transformed program and statistics.
///
/// ```
/// use minigo_escape::{inline_program, InlineOptions};
///
/// let src = "func mk() []int { s := make([]int, 4)\n return s }\nfunc main() { t := mk()\n print(len(t)) }\n";
/// let program = minigo_syntax::parse(src).unwrap();
/// let (inlined, stats) = inline_program(&program, &InlineOptions::default());
/// assert_eq!(stats.inlined_calls, 1);
/// let text = minigo_syntax::print_program(&inlined);
/// assert!(text.contains("__in0_s := make"));
/// ```
pub fn inline_program(program: &Program, opts: &InlineOptions) -> (Program, InlineStats) {
    let cg = CallGraph::build(program);
    let eligible: HashMap<FuncId, &Func> = program
        .funcs
        .iter()
        .filter(|f| is_eligible(f, &cg, opts))
        .map(|f| (f.id, f))
        .collect();
    let mut out = program.clone();
    let mut ctx = Inliner {
        eligible: &eligible,
        by_name: program
            .funcs
            .iter()
            .map(|f| (f.name.clone(), f.id))
            .collect(),
        next_expr: program.expr_count,
        next_stmt: program.stmt_count,
        next_block: program.block_count,
        next_site: 0,
        stats: InlineStats::default(),
    };
    for func in &mut out.funcs {
        ctx.rewrite_block(&mut func.body);
    }
    out.expr_count = ctx.next_expr;
    out.stmt_count = ctx.next_stmt;
    out.block_count = ctx.next_block;
    let stats = ctx.stats;
    (out, stats)
}

/// A callee is inlinable when it is small, non-recursive, not `main`, and
/// control flow is simple: at most one `return`, which must be the last
/// statement of the body.
fn is_eligible(f: &Func, cg: &CallGraph, opts: &InlineOptions) -> bool {
    if f.name == "main" || cg.is_recursive(f.id) {
        return false;
    }
    if count_stmts(&f.body) > opts.max_stmts {
        return false;
    }
    let returns = count_returns(&f.body);
    match returns {
        0 => f.results.is_empty(),
        1 => matches!(
            f.body.stmts.last().map(|s| &s.kind),
            Some(StmtKind::Return { .. })
        ),
        _ => false,
    }
}

fn count_stmts(block: &Block) -> usize {
    let mut n = 0;
    for stmt in &block.stmts {
        n += 1;
        match &stmt.kind {
            StmtKind::If { then, els, .. } => {
                n += count_stmts(then);
                if let Some(els) = els {
                    n += 1;
                    if let StmtKind::BlockStmt { block } = &els.kind {
                        n += count_stmts(block);
                    }
                }
            }
            StmtKind::For { body, .. } => n += count_stmts(body),
            StmtKind::BlockStmt { block } => n += count_stmts(block),
            StmtKind::Switch { cases, default, .. } => {
                for c in cases {
                    n += count_stmts(&c.body);
                }
                if let Some(d) = default {
                    n += count_stmts(d);
                }
            }
            _ => {}
        }
    }
    n
}

fn count_returns(block: &Block) -> usize {
    let mut n = 0;
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Return { .. } => n += 1,
            StmtKind::If { then, els, .. } => {
                n += count_returns(then);
                if let Some(els) = els {
                    if let StmtKind::BlockStmt { block } = &els.kind {
                        n += count_returns(block);
                    } else if let StmtKind::Return { .. } = &els.kind {
                        n += 1;
                    }
                }
            }
            StmtKind::For { body, .. } => n += count_returns(body),
            StmtKind::BlockStmt { block } => n += count_returns(block),
            StmtKind::Switch { cases, default, .. } => {
                for c in cases {
                    n += count_returns(&c.body);
                }
                if let Some(d) = default {
                    n += count_returns(d);
                }
            }
            _ => {}
        }
    }
    n
}

struct Inliner<'p> {
    eligible: &'p HashMap<FuncId, &'p Func>,
    by_name: HashMap<String, FuncId>,
    next_expr: u32,
    next_stmt: u32,
    next_block: u32,
    next_site: u32,
    stats: InlineStats,
}

impl<'p> Inliner<'p> {
    fn expr_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr);
        self.next_expr += 1;
        id
    }

    fn stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    fn block_id(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }

    fn rewrite_block(&mut self, block: &mut Block) {
        let old = std::mem::take(&mut block.stmts);
        let mut stmts = Vec::with_capacity(old.len());
        for mut stmt in old {
            self.rewrite_children(&mut stmt);
            match self.try_inline(&stmt) {
                Some(replacement) => {
                    self.stats.inlined_calls += 1;
                    stmts.extend(replacement);
                }
                None => stmts.push(stmt),
            }
        }
        block.stmts = stmts;
    }

    fn rewrite_children(&mut self, stmt: &mut Stmt) {
        match &mut stmt.kind {
            StmtKind::If { then, els, .. } => {
                self.rewrite_block(then);
                if let Some(els) = els {
                    self.rewrite_children(els);
                }
            }
            StmtKind::For { body, .. } => self.rewrite_block(body),
            StmtKind::BlockStmt { block } => self.rewrite_block(block),
            StmtKind::Switch { cases, default, .. } => {
                for c in cases {
                    self.rewrite_block(&mut c.body);
                }
                if let Some(d) = default {
                    self.rewrite_block(d);
                }
            }
            _ => {}
        }
    }

    /// Inlines `x, y := f(args)`, `x, y = f(args)` (identifier targets
    /// only), and `f(args)` statements. Returns the replacement statement
    /// sequence: declarations for `:=` targets (typed from the callee's
    /// results) followed by the inline block.
    fn try_inline(&mut self, stmt: &Stmt) -> Option<Vec<Stmt>> {
        let (call, targets): (&Expr, Vec<Target>) = match &stmt.kind {
            StmtKind::ShortDecl { names, init } if init.len() == 1 => (
                &init[0],
                names.iter().map(|n| Target::Decl(n.clone())).collect(),
            ),
            StmtKind::Assign { lhs, op: None, rhs } if rhs.len() == 1 => {
                let mut targets = Vec::new();
                for l in lhs {
                    match &l.kind {
                        ExprKind::Ident(name) => targets.push(Target::Assign(name.clone())),
                        _ => return None,
                    }
                }
                (&rhs[0], targets)
            }
            StmtKind::Expr { expr } => (expr, Vec::new()),
            _ => return None,
        };
        let ExprKind::Call { callee, args } = &call.kind else {
            return None;
        };
        let fid = self.by_name.get(callee).copied()?;
        let Some(func) = self.eligible.get(&fid) else {
            self.stats.skipped_calls += 1;
            return None;
        };
        if !targets.is_empty() && targets.len() != func.results.len() {
            self.stats.skipped_calls += 1;
            return None;
        }
        // Arguments must not themselves contain calls (evaluation-order
        // fidelity); keep it simple and skip such sites.
        if args.iter().any(contains_call) {
            self.stats.skipped_calls += 1;
            return None;
        }

        let site = self.next_site;
        self.next_site += 1;
        let prefix = format!("__in{site}_");

        let mut stmts = Vec::new();
        // Bind parameters: __inK_param := arg.
        for (param, arg) in func.params.iter().zip(args) {
            let mut arg = arg.clone();
            self.renumber_expr(&mut arg);
            stmts.push(Stmt {
                id: self.stmt_id(),
                kind: StmtKind::ShortDecl {
                    names: vec![format!("{prefix}{}", param.name)],
                    init: vec![arg],
                },
                span: stmt.span,
            });
        }
        // Named results used by a bare return need declarations.
        let named_results: Vec<_> = func.results.iter().filter(|r| !r.name.is_empty()).collect();
        for r in &named_results {
            stmts.push(Stmt {
                id: self.stmt_id(),
                kind: StmtKind::VarDecl {
                    names: vec![format!("{prefix}{}", r.name)],
                    ty: r.ty.clone(),
                    init: Vec::new(),
                },
                span: stmt.span,
            });
        }

        // Copy the body, renaming every identifier and rewriting the
        // trailing return into assignments to the targets.
        let body = func.body.clone();
        let n = body.stmts.len();
        for (i, mut s) in body.stmts.into_iter().enumerate() {
            let is_last = i + 1 == n;
            if is_last {
                if let StmtKind::Return { exprs } = &s.kind {
                    let mut exprs = exprs.clone();
                    for e in &mut exprs {
                        self.rename_expr(e, &prefix);
                        self.renumber_expr(e);
                    }
                    // A bare return uses the named result variables.
                    if exprs.is_empty() && !func.results.is_empty() {
                        for r in &func.results {
                            let mut e = Expr {
                                id: ExprId(0),
                                kind: ExprKind::Ident(format!("{prefix}{}", r.name)),
                                span: stmt.span,
                            };
                            self.renumber_expr(&mut e);
                            exprs.push(e);
                        }
                    }
                    if !targets.is_empty() {
                        stmts.push(self.bind_targets(&targets, exprs, stmt.span));
                    } else {
                        // Results discarded: still evaluate for effects.
                        for e in exprs {
                            if matches!(e.kind, ExprKind::Call { .. } | ExprKind::Builtin { .. }) {
                                stmts.push(Stmt {
                                    id: self.stmt_id(),
                                    kind: StmtKind::Expr { expr: e },
                                    span: stmt.span,
                                });
                            }
                        }
                    }
                    continue;
                }
            }
            self.rename_stmt(&mut s, &prefix);
            self.renumber_stmt(&mut s);
            stmts.push(s);
        }
        // Functions with results but no trailing return (all named,
        // implicit zero values) still need the binding.
        if !targets.is_empty()
            && !matches!(
                stmts.last().map(|s| &s.kind),
                Some(StmtKind::ShortDecl { .. } | StmtKind::Assign { .. })
            )
        {
            // The body ended without a return statement; bind the named
            // results' current values.
            let exprs: Vec<Expr> = func
                .results
                .iter()
                .map(|r| {
                    let mut e = Expr {
                        id: ExprId(0),
                        kind: ExprKind::Ident(format!("{prefix}{}", r.name)),
                        span: stmt.span,
                    };
                    self.renumber_expr(&mut e);
                    e
                })
                .collect();
            stmts.push(self.bind_targets(&targets, exprs, stmt.span));
        }

        let block = Block {
            id: self.block_id(),
            stmts,
            span: stmt.span,
        };
        let mut out = Vec::new();
        // `x := f(...)` targets must be visible after the block: declare
        // them (typed from the callee's results) before it; the bindings
        // inside the block then plain-assign.
        for (t, r) in targets.iter().zip(&func.results) {
            if let Target::Decl(name) = t {
                out.push(Stmt {
                    id: self.stmt_id(),
                    kind: StmtKind::VarDecl {
                        names: vec![name.clone()],
                        ty: r.ty.clone(),
                        init: Vec::new(),
                    },
                    span: stmt.span,
                });
            }
        }
        out.push(Stmt {
            id: self.stmt_id(),
            kind: StmtKind::BlockStmt { block },
            span: stmt.span,
        });
        Some(out)
    }

    /// Binds the callee's (renamed) result expressions to the call-site
    /// targets. Declarations were hoisted before the block, so this is
    /// always a plain assignment.
    fn bind_targets(
        &mut self,
        targets: &[Target],
        exprs: Vec<Expr>,
        span: minigo_syntax::Span,
    ) -> Stmt {
        let lhs: Vec<Expr> = targets
            .iter()
            .map(|t| {
                let name = match t {
                    Target::Decl(n) | Target::Assign(n) => n.clone(),
                };
                let mut e = Expr {
                    id: ExprId(0),
                    kind: ExprKind::Ident(name),
                    span,
                };
                self.renumber_expr(&mut e);
                e
            })
            .collect();
        Stmt {
            id: self.stmt_id(),
            kind: StmtKind::Assign {
                lhs,
                op: None,
                rhs: exprs,
            },
            span,
        }
    }

    // -- renaming (prefix every variable identifier and declaration) --

    fn rename_stmt(&mut self, stmt: &mut Stmt, prefix: &str) {
        match &mut stmt.kind {
            StmtKind::VarDecl { names, init, .. } | StmtKind::ShortDecl { names, init } => {
                for n in names.iter_mut() {
                    *n = format!("{prefix}{n}");
                }
                for e in init {
                    self.rename_expr(e, prefix);
                }
            }
            StmtKind::Assign { lhs, rhs, .. } => {
                for e in lhs.iter_mut().chain(rhs) {
                    self.rename_expr(e, prefix);
                }
            }
            StmtKind::If { cond, then, els } => {
                self.rename_expr(cond, prefix);
                self.rename_block(then, prefix);
                if let Some(els) = els {
                    self.rename_stmt(els, prefix);
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(init) = init {
                    self.rename_stmt(init, prefix);
                }
                if let Some(cond) = cond {
                    self.rename_expr(cond, prefix);
                }
                if let Some(post) = post {
                    self.rename_stmt(post, prefix);
                }
                self.rename_block(body, prefix);
            }
            StmtKind::Return { exprs } => {
                for e in exprs {
                    self.rename_expr(e, prefix);
                }
            }
            StmtKind::Expr { expr } => self.rename_expr(expr, prefix),
            StmtKind::BlockStmt { block } => self.rename_block(block, prefix),
            StmtKind::Defer { call } => self.rename_expr(call, prefix),
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.rename_expr(subject, prefix);
                for SwitchCase { values, body } in cases {
                    for v in values {
                        self.rename_expr(v, prefix);
                    }
                    self.rename_block(body, prefix);
                }
                if let Some(d) = default {
                    self.rename_block(d, prefix);
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Free { target, .. } => self.rename_expr(target, prefix),
        }
    }

    fn rename_block(&mut self, block: &mut Block, prefix: &str) {
        for s in &mut block.stmts {
            self.rename_stmt(s, prefix);
        }
    }

    fn rename_expr(&mut self, e: &mut Expr, prefix: &str) {
        match &mut e.kind {
            ExprKind::Ident(name) => *name = format!("{prefix}{name}"),
            ExprKind::Unary { operand, .. } => self.rename_expr(operand, prefix),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.rename_expr(lhs, prefix);
                self.rename_expr(rhs, prefix);
            }
            ExprKind::Field { base, .. } => self.rename_expr(base, prefix),
            ExprKind::Index { base, index } => {
                self.rename_expr(base, prefix);
                self.rename_expr(index, prefix);
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                self.rename_expr(base, prefix);
                for bound in [lo, hi].into_iter().flatten() {
                    self.rename_expr(bound, prefix);
                }
            }
            ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } => {
                for a in args {
                    self.rename_expr(a, prefix);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.rename_expr(f, prefix);
                }
            }
            _ => {}
        }
    }

    // -- id renumbering (fresh ids for every cloned node) --

    fn renumber_stmt(&mut self, stmt: &mut Stmt) {
        stmt.id = self.stmt_id();
        match &mut stmt.kind {
            StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => {
                for e in init {
                    self.renumber_expr(e);
                }
            }
            StmtKind::Assign { lhs, rhs, .. } => {
                for e in lhs.iter_mut().chain(rhs) {
                    self.renumber_expr(e);
                }
            }
            StmtKind::If { cond, then, els } => {
                self.renumber_expr(cond);
                self.renumber_block(then);
                if let Some(els) = els {
                    self.renumber_stmt(els);
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(init) = init {
                    self.renumber_stmt(init);
                }
                if let Some(cond) = cond {
                    self.renumber_expr(cond);
                }
                if let Some(post) = post {
                    self.renumber_stmt(post);
                }
                self.renumber_block(body);
            }
            StmtKind::Return { exprs } => {
                for e in exprs {
                    self.renumber_expr(e);
                }
            }
            StmtKind::Expr { expr } => self.renumber_expr(expr),
            StmtKind::BlockStmt { block } => self.renumber_block(block),
            StmtKind::Defer { call } => self.renumber_expr(call),
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.renumber_expr(subject);
                for SwitchCase { values, body } in cases {
                    for v in values {
                        self.renumber_expr(v);
                    }
                    self.renumber_block(body);
                }
                if let Some(d) = default {
                    self.renumber_block(d);
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Free { target, .. } => self.renumber_expr(target),
        }
    }

    fn renumber_block(&mut self, block: &mut Block) {
        block.id = self.block_id();
        for s in &mut block.stmts {
            self.renumber_stmt(s);
        }
    }

    fn renumber_expr(&mut self, e: &mut Expr) {
        e.id = self.expr_id();
        match &mut e.kind {
            ExprKind::Unary { operand, .. } => self.renumber_expr(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.renumber_expr(lhs);
                self.renumber_expr(rhs);
            }
            ExprKind::Field { base, .. } => self.renumber_expr(base),
            ExprKind::Index { base, index } => {
                self.renumber_expr(base);
                self.renumber_expr(index);
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                self.renumber_expr(base);
                for bound in [lo, hi].into_iter().flatten() {
                    self.renumber_expr(bound);
                }
            }
            ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } => {
                for a in args {
                    self.renumber_expr(a);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.renumber_expr(f);
                }
            }
            _ => {}
        }
    }
}

enum Target {
    Decl(String),
    Assign(String),
}

fn contains_call(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call { .. } => true,
        ExprKind::Unary { operand, .. } => contains_call(operand),
        ExprKind::Binary { lhs, rhs, .. } => contains_call(lhs) || contains_call(rhs),
        ExprKind::Field { base, .. } => contains_call(base),
        ExprKind::Index { base, index } => contains_call(base) || contains_call(index),
        ExprKind::SliceExpr { base, lo, hi } => {
            contains_call(base) || [lo, hi].into_iter().flatten().any(|b| contains_call(b))
        }
        ExprKind::Builtin { args, .. } => args.iter().any(contains_call),
        ExprKind::StructLit { fields, .. } => fields.iter().any(contains_call),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_syntax::{parse, print_program};

    fn inline_and_print(src: &str) -> (String, InlineStats) {
        let p = parse(src).expect("parses");
        let (out, stats) = inline_program(&p, &InlineOptions::default());
        let text = print_program(&out);
        // The transformed program must still be valid MiniGo.
        minigo_syntax::frontend(&text)
            .unwrap_or_else(|e| panic!("inlined program invalid: {}\n{text}", e.render(&text)));
        (text, stats)
    }

    #[test]
    fn inlines_simple_factory() {
        let src = "func mk(n int) []int { s := make([]int, 16)\n s[0] = n\n return s }\nfunc main() { t := mk(3)\n print(t[0]) }\n";
        let (text, stats) = inline_and_print(src);
        assert_eq!(stats.inlined_calls, 1);
        assert!(text.contains("__in0_s := make"), "{text}");
        assert!(text.contains("var t []int"), "{text}");
        assert!(text.contains("t = __in0_s"), "{text}");
    }

    #[test]
    fn skips_recursive_and_large_functions() {
        let src = "func rec(n int) int { if n < 1 { return 0 }\n return rec(n-1) }\nfunc main() { x := rec(3)\n print(x) }\n";
        let (_, stats) = inline_and_print(src);
        assert_eq!(stats.inlined_calls, 0);
    }

    #[test]
    fn skips_mid_body_returns() {
        let src = "func f(n int) int { if n > 0 { return 1 }\n return 2 }\nfunc main() { x := f(3)\n print(x) }\n";
        let (_, stats) = inline_and_print(src);
        assert_eq!(stats.inlined_calls, 0, "two returns: not eligible");
    }

    #[test]
    fn inlined_program_reanalyzes_with_stack_promotion() {
        // The point of §4.6.4: after inlining, the constant-size make that
        // escaped `mk` by return becomes stack-allocatable in plain Go.
        let src = "func mk(n int) []int { s := make([]int, 8)\n s[0] = n * 2\n return s }\nfunc main() { t := mk(21)\n x := t[0] + 1\n print(x) }\n";
        let p = parse(src).expect("parses");
        let (inlined, stats) = inline_program(&p, &InlineOptions::default());
        assert!(stats.inlined_calls >= 1);
        let text = print_program(&inlined);
        let (program, res, types) = minigo_syntax::frontend(&text)
            .unwrap_or_else(|e| panic!("{}\n{text}", e.render(&text)));
        let analysis = crate::analyze::analyze(
            &program,
            &res,
            &types,
            &crate::analyze::AnalyzeOptions::go(),
        );
        let stack_sites = analysis
            .alloc_decisions
            .values()
            .filter(|&&p| p == crate::analyze::AllocPlace::Stack)
            .count();
        assert!(
            stack_sites >= 1,
            "inlining lets Go stack-allocate the callee's make: {:?}",
            analysis.alloc_decisions
        );

        // Without inlining, the same make must stay on the heap.
        let (program, res, types) = minigo_syntax::frontend(src).unwrap();
        let analysis = crate::analyze::analyze(
            &program,
            &res,
            &types,
            &crate::analyze::AnalyzeOptions::go(),
        );
        let stack_sites = analysis
            .alloc_decisions
            .values()
            .filter(|&&p| p == crate::analyze::AllocPlace::Stack)
            .count();
        assert_eq!(
            stack_sites, 0,
            "escaping-by-return make is heap without inlining"
        );
    }

    #[test]
    fn renaming_preserves_shadowing() {
        let src = "func f(x int) int { y := x\n { y := y * 2\n x = y }\n return x + y }\nfunc main() { r := f(5)\n print(r) }\n";
        let (text, stats) = inline_and_print(src);
        assert_eq!(stats.inlined_calls, 1);
        assert!(text.contains("__in0_y"), "{text}");
    }

    #[test]
    fn multi_result_inline() {
        let src = "func two(n int) (int, int) { return n, n * 2 }\nfunc main() { a, b := two(4)\n print(a, b) }\n";
        let (text, stats) = inline_and_print(src);
        assert_eq!(stats.inlined_calls, 1);
        assert!(text.contains("var a int"), "{text}");
        assert!(text.contains("a, b = "), "{text}");
    }

    #[test]
    fn call_argument_sites_are_skipped() {
        let src = "func g(n int) int { return n + 1 }\nfunc main() { x := g(g(1))\n print(x) }\n";
        let (_, stats) = inline_and_print(src);
        // The outer statement has a call argument containing a call.
        assert_eq!(stats.inlined_calls, 0);
        assert!(stats.skipped_calls >= 1);
    }
}
