//! `tcfree` instrumentation (§4.5 of the paper).
//!
//! For each variable chosen by the analysis, a `tcfree` statement is
//! inserted as the last statement of the variable's declaration scope —
//! placed just before a trailing `return` so the free stays live. Variables
//! declared in a `for`-init clause belong to the loop's implicit scope, so
//! their free lands immediately *after* the loop statement.
//!
//! Safety deviations from a literal reading of the paper, both documented
//! in DESIGN.md:
//! * a variable mentioned by the trailing `return`'s expressions is skipped
//!   (freeing before the use would be a use-after-free);
//! * mid-function returns skip the frees entirely — "it is still safe to
//!   leave the deallocation to GC".

use std::collections::{HashMap, HashSet};

use minigo_syntax::{
    Block, Expr, ExprId, ExprKind, FreeKind, Program, Resolution, Span, Stmt, StmtId, StmtKind,
    TypeInfo, VarId,
};

use crate::analyze::Analysis;
use crate::liveness::{PartialFree, PlacementPlan};

/// Rewrites `program`, inserting the `tcfree` statements chosen by
/// `analysis`. Synthesized identifier uses are registered in `res` so the
/// VM can resolve them.
pub fn instrument(program: &Program, res: &mut Resolution, analysis: &Analysis) -> Program {
    instrument_inner(program, res, None, analysis, None)
}

/// Like [`instrument`], but honoring a liveness [`PlacementPlan`]:
/// variables the plan advances are freed right after their last-use
/// statement instead of at scope exit, and planned partial frees emit
/// `tcfree(x.f)` statements whose synthesized expressions get types
/// recorded in `types` (both VM engines resolve field projections through
/// the expression type table). An empty plan reproduces [`instrument`]
/// bit-exactly.
pub fn instrument_with_plan(
    program: &Program,
    res: &mut Resolution,
    types: &mut TypeInfo,
    analysis: &Analysis,
    plan: &PlacementPlan,
) -> Program {
    instrument_inner(program, res, Some(types), analysis, Some(plan))
}

fn instrument_inner(
    program: &Program,
    res: &mut Resolution,
    mut types: Option<&mut TypeInfo>,
    analysis: &Analysis,
    plan: Option<&PlacementPlan>,
) -> Program {
    let mut next_expr = program.expr_count;
    let mut next_stmt = program.stmt_count;
    let mut out = program.clone();
    for func in &mut out.funcs {
        let frees = analysis
            .free_vars
            .get(&func.id)
            .cloned()
            .unwrap_or_default();
        let advances = plan
            .and_then(|pl| pl.advance.get(&func.id))
            .cloned()
            .unwrap_or_default();
        let partials = plan
            .and_then(|pl| pl.partials.get(&func.id))
            .cloned()
            .unwrap_or_default();
        if frees.is_empty() && partials.is_empty() {
            continue;
        }
        // Advanced variables leave the scope-exit path entirely.
        let advanced: HashSet<VarId> = advances.iter().map(|(v, _, _)| *v).collect();
        // Map: declaring statement -> frees it triggers.
        let mut by_decl: HashMap<StmtId, Vec<(VarId, FreeKind)>> = HashMap::new();
        for (vid, kind) in frees {
            if advanced.contains(&vid) {
                continue;
            }
            if let Some(stmt) = res.decl_stmt_of(vid) {
                by_decl.entry(stmt).or_default().push((vid, kind));
            }
        }
        let mut after_any: HashMap<StmtId, Vec<(VarId, FreeKind)>> = HashMap::new();
        for (vid, kind, sid) in advances {
            after_any.entry(sid).or_default().push((vid, kind));
        }
        let mut partial_after: HashMap<StmtId, Vec<PartialFree>> = HashMap::new();
        for pf in partials {
            partial_after.entry(pf.after).or_default().push(pf);
        }
        let mut ctx = Inserter {
            res,
            types: types.as_deref_mut(),
            by_decl,
            after_any,
            partial_after,
            next_expr: &mut next_expr,
            next_stmt: &mut next_stmt,
        };
        ctx.rewrite_block(&mut func.body);
    }
    out.expr_count = next_expr;
    out.stmt_count = next_stmt;
    out
}

struct Inserter<'a> {
    res: &'a mut Resolution,
    types: Option<&'a mut TypeInfo>,
    by_decl: HashMap<StmtId, Vec<(VarId, FreeKind)>>,
    /// Liveness-advanced whole-variable frees, keyed by the statement
    /// they follow.
    after_any: HashMap<StmtId, Vec<(VarId, FreeKind)>>,
    /// Planned partial frees, keyed by the statement they follow.
    partial_after: HashMap<StmtId, Vec<PartialFree>>,
    next_expr: &'a mut u32,
    next_stmt: &'a mut u32,
}

impl<'a> Inserter<'a> {
    fn make_free(&mut self, var: VarId, kind: FreeKind) -> Stmt {
        let expr_id = ExprId(*self.next_expr);
        *self.next_expr += 1;
        let stmt_id = StmtId(*self.next_stmt);
        *self.next_stmt += 1;
        self.res.record_use(expr_id, var);
        let name = self.res.var(var).name.clone();
        Stmt {
            id: stmt_id,
            kind: StmtKind::Free {
                target: Expr {
                    id: expr_id,
                    kind: ExprKind::Ident(name),
                    span: Span::synthetic(),
                },
                kind,
            },
            span: Span::synthetic(),
        }
    }

    fn make_partial(&mut self, pf: &PartialFree) -> Stmt {
        let base_id = ExprId(*self.next_expr);
        *self.next_expr += 1;
        let field_id = ExprId(*self.next_expr);
        *self.next_expr += 1;
        let stmt_id = StmtId(*self.next_stmt);
        *self.next_stmt += 1;
        self.res.record_use(base_id, pf.base);
        let name = self.res.var(pf.base).name.clone();
        if let Some(types) = self.types.as_deref_mut() {
            // Both engines resolve `x.f` through the base expression's
            // recorded type (struct name or pointer-to-struct).
            if let Some(bt) = types.var(pf.base).cloned() {
                types.record_expr_type(base_id, bt);
            }
            types.record_expr_type(field_id, pf.field_ty.clone());
        }
        Stmt {
            id: stmt_id,
            kind: StmtKind::Free {
                target: Expr {
                    id: field_id,
                    kind: ExprKind::Field {
                        base: Box::new(Expr {
                            id: base_id,
                            kind: ExprKind::Ident(name),
                            span: Span::synthetic(),
                        }),
                        name: pf.field.clone(),
                    },
                    span: Span::synthetic(),
                },
                kind: pf.kind,
            },
            span: Span::synthetic(),
        }
    }

    fn rewrite_block(&mut self, block: &mut Block) {
        // First recurse into nested statements and collect insertions.
        let mut end_frees: Vec<(VarId, FreeKind)> = Vec::new();
        let mut after: HashMap<StmtId, Vec<(VarId, FreeKind)>> = HashMap::new();
        let mut partial: HashMap<StmtId, Vec<PartialFree>> = HashMap::new();
        for stmt in &mut block.stmts {
            self.rewrite_stmt(stmt);
            match &stmt.kind {
                StmtKind::VarDecl { .. } | StmtKind::ShortDecl { .. } => {
                    if let Some(list) = self.by_decl.remove(&stmt.id) {
                        end_frees.extend(list);
                    }
                }
                StmtKind::For {
                    init: Some(init), ..
                } => {
                    // Frees for for-init variables go right after the loop:
                    // that is where the implicit loop scope ends.
                    if let Some(list) = self.by_decl.remove(&init.id) {
                        after.entry(stmt.id).or_default().extend(list);
                    }
                }
                _ => {}
            }
            // Liveness-advanced frees and partial frees follow whichever
            // statement the plan names, in whatever block it lives.
            if let Some(list) = self.after_any.remove(&stmt.id) {
                after.entry(stmt.id).or_default().extend(list);
            }
            if let Some(list) = self.partial_after.remove(&stmt.id) {
                partial.entry(stmt.id).or_default().extend(list);
            }
        }
        if end_frees.is_empty() && after.is_empty() && partial.is_empty() {
            return;
        }
        let old = std::mem::take(&mut block.stmts);
        let mut stmts = Vec::with_capacity(old.len() + end_frees.len());
        let last_index = old.len().saturating_sub(1);
        for (i, stmt) in old.into_iter().enumerate() {
            let after_this = after.remove(&stmt.id);
            let partial_this = partial.remove(&stmt.id);
            let is_last = i == last_index;
            if is_last && is_terminator(&stmt) {
                // Insert the end-of-scope frees *before* the trailing
                // terminator so they execute — skipping any variable the
                // terminator still reads.
                let used = vars_read_by(self.res, &stmt);
                for (vid, kind) in end_frees.drain(..) {
                    if !used.contains(&vid) {
                        stmts.push(self.make_free(vid, kind));
                    }
                }
                stmts.push(stmt);
            } else {
                stmts.push(stmt);
            }
            if let Some(list) = after_this {
                for (vid, kind) in list {
                    stmts.push(self.make_free(vid, kind));
                }
            }
            if let Some(list) = partial_this {
                for pf in list {
                    stmts.push(self.make_partial(&pf));
                }
            }
        }
        for (vid, kind) in end_frees {
            stmts.push(self.make_free(vid, kind));
        }
        block.stmts = stmts;
    }

    fn rewrite_stmt(&mut self, stmt: &mut Stmt) {
        match &mut stmt.kind {
            StmtKind::If { then, els, .. } => {
                self.rewrite_block(then);
                if let Some(els) = els {
                    self.rewrite_stmt(els);
                }
            }
            StmtKind::For { body, .. } => self.rewrite_block(body),
            StmtKind::BlockStmt { block } => self.rewrite_block(block),
            StmtKind::Switch { cases, default, .. } => {
                for case in cases {
                    self.rewrite_block(&mut case.body);
                }
                if let Some(default) = default {
                    self.rewrite_block(default);
                }
            }
            _ => {}
        }
    }
}

fn is_terminator(stmt: &Stmt) -> bool {
    matches!(
        stmt.kind,
        StmtKind::Return { .. } | StmtKind::Break | StmtKind::Continue
    )
}

/// Variables read by a statement's expressions (used to keep frees from
/// preceding a use in the trailing return).
fn vars_read_by(res: &Resolution, stmt: &Stmt) -> Vec<VarId> {
    let mut out = Vec::new();
    if let StmtKind::Return { exprs } = &stmt.kind {
        for e in exprs {
            collect_vars(res, e, &mut out);
        }
    }
    out
}

fn collect_vars(res: &Resolution, e: &Expr, out: &mut Vec<VarId>) {
    match &e.kind {
        ExprKind::Ident(_) => {
            if let Some(v) = res.def_of(e.id) {
                out.push(v);
            }
        }
        ExprKind::Unary { operand, .. } => collect_vars(res, operand, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_vars(res, lhs, out);
            collect_vars(res, rhs, out);
        }
        ExprKind::Field { base, .. } => collect_vars(res, base, out),
        ExprKind::Index { base, index } => {
            collect_vars(res, base, out);
            collect_vars(res, index, out);
        }
        ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } => {
            for a in args {
                collect_vars(res, a, out);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for f in fields {
                collect_vars(res, f, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalyzeOptions};
    use minigo_syntax::{frontend, print_program};

    fn instrumented(src: &str) -> String {
        let (p, mut r, t) = frontend(src).expect("frontend");
        let a = analyze(&p, &r, &t, &AnalyzeOptions::default());
        let out = instrument(&p, &mut r, &a);
        print_program(&out)
    }

    #[test]
    fn inserts_free_at_scope_end() {
        let text = instrumented("func f(n int) { s := make([]int, n)\n s[0] = 1\n print(s[0]) }\n");
        assert!(text.contains("tcfree(s)"), "{text}");
        let free_pos = text.find("tcfree(s)").unwrap();
        let print_pos = text.find("print(").unwrap();
        assert!(free_pos > print_pos, "free is the last statement: {text}");
    }

    #[test]
    fn inserts_free_inside_loop_body() {
        let text = instrumented(
            "func f(n int) { for i := 0; i < n; i += 1 { s := make([]int, i)\n s[0] = 1 } }\n",
        );
        // The free must be inside the loop body (the declaration scope).
        let body_start = text.find("{ ").unwrap_or(0);
        assert!(text.contains("tcfree(s)"), "{text}");
        assert!(text.rfind("tcfree(s)").unwrap() > body_start);
        // And before the closing braces of the loop.
        let free = text.find("tcfree(s)").unwrap();
        let last_close = text.rfind('}').unwrap();
        assert!(free < last_close);
    }

    #[test]
    fn for_init_variable_freed_after_loop() {
        let text = instrumented(
            "func f(n int) { for s := make([]int, n); len(s) < n+1; s = append(s, 1) { s[0] = 1 }\n print(n) }\n",
        );
        if let Some(free) = text.find("tcfree(s)") {
            // The free must come after the loop's closing brace, not inside.
            let loop_close = text.find("}\n").unwrap_or(0);
            assert!(free > loop_close, "{text}");
        }
    }

    #[test]
    fn free_before_trailing_return_when_var_unused() {
        let text = instrumented(
            "func f(n int) int { s := make([]int, n)\n s[0] = 7\n x := s[0]\n return x }\n",
        );
        let free = text.find("tcfree(s)").expect(&text);
        let ret = text.find("return x").expect(&text);
        assert!(free < ret, "free precedes the return: {text}");
    }

    #[test]
    fn no_free_when_trailing_return_uses_var() {
        let text =
            instrumented("func f(n int) int { s := make([]int, n)\n s[0] = 7\n return s[0] }\n");
        assert!(
            !text.contains("tcfree(s)"),
            "freeing before `return s[0]` would be use-after-free: {text}"
        );
    }

    #[test]
    fn go_mode_program_unchanged() {
        let src = "func f(n int) { s := make([]int, n)\n s[0] = 1 }\n";
        let (p, mut r, t) = frontend(src).unwrap();
        let a = analyze(&p, &r, &t, &AnalyzeOptions::go());
        let out = instrument(&p, &mut r, &a);
        assert_eq!(print_program(&out), print_program(&p));
    }

    #[test]
    fn instrumented_program_reparses() {
        let text = instrumented(
            "func f(n int) { s := make([]int, n)\n m := make(map[int]int)\n for i := 0; i < n; i += 1 { m[i] = i }\n s[0] = len(m) }\n",
        );
        assert!(minigo_syntax::parse(&text).is_ok(), "{text}");
        assert!(text.contains("tcfree(s)"));
        assert!(text.contains("tcfree(m)"));
    }

    #[test]
    fn nested_scope_frees_in_right_blocks() {
        let text = instrumented(
            "func f(n int) { { a := make([]int, n)\n a[0] = 1 }\n b := make([]int, n)\n b[0] = 2 }\n",
        );
        let free_a = text.find("tcfree(a)").expect(&text);
        let decl_b = text.find("b := make").expect(&text);
        assert!(free_a < decl_b, "a freed in its inner block: {text}");
        assert!(text.contains("tcfree(b)"));
    }
}
