//! Call graph construction and bottom-up ordering.
//!
//! Go orders intra-procedural analysis inner-to-outer so that call sites
//! find known parameter tags (§4.4). We compute strongly connected
//! components (Tarjan) and process them in reverse topological order;
//! functions inside a non-trivial SCC (mutual recursion) and self-recursive
//! functions fall back to the default tag for their in-SCC calls.

use std::collections::HashMap;

use minigo_syntax::{Block, Expr, ExprKind, FuncId, Program, Stmt, StmtKind};

/// The program's direct-call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// callees[f] = functions f calls (deduplicated).
    callees: HashMap<FuncId, Vec<FuncId>>,
    /// Bottom-up processing order: callees before callers.
    order: Vec<FuncId>,
    /// SCC index per function; functions in the same SCC are mutually
    /// recursive.
    scc: HashMap<FuncId, usize>,
    /// SCC sizes (for recursion detection).
    scc_size: Vec<usize>,
    /// Self-recursive functions (call themselves directly).
    self_recursive: HashMap<FuncId, bool>,
}

impl CallGraph {
    /// Builds the call graph for `program`.
    pub fn build(program: &Program) -> Self {
        let by_name: HashMap<&str, FuncId> = program
            .funcs
            .iter()
            .map(|f| (f.name.as_str(), f.id))
            .collect();
        let mut cg = CallGraph::default();
        for func in &program.funcs {
            let mut calls = Vec::new();
            collect_block(&func.body, &mut |name| {
                if let Some(&fid) = by_name.get(name) {
                    calls.push(fid);
                }
            });
            let mut selfrec = false;
            calls.retain(|&c| {
                if c == func.id {
                    selfrec = true;
                }
                true
            });
            calls.sort();
            calls.dedup();
            cg.self_recursive.insert(func.id, selfrec);
            cg.callees.insert(func.id, calls);
        }
        cg.compute_sccs(program);
        cg
    }

    /// Functions in bottom-up order (callees first).
    pub fn bottom_up(&self) -> &[FuncId] {
        &self.order
    }

    /// The functions `f` calls directly.
    pub fn callees_of(&self, f: FuncId) -> &[FuncId] {
        self.callees.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `caller` and `callee` are mutually recursive (same SCC) or
    /// the call is a direct self-call — either way the callee's tag is not
    /// available when the caller is analyzed.
    pub fn call_unresolvable(&self, caller: FuncId, callee: FuncId) -> bool {
        if caller == callee {
            return true;
        }
        match (self.scc.get(&caller), self.scc.get(&callee)) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }

    /// Whether `f` participates in recursion at all.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.self_recursive.get(&f).copied().unwrap_or(false)
            || self
                .scc
                .get(&f)
                .map(|&s| self.scc_size[s] > 1)
                .unwrap_or(false)
    }

    fn compute_sccs(&mut self, program: &Program) {
        // Iterative Tarjan to avoid deep recursion on generated programs.
        #[derive(Clone)]
        struct NodeState {
            index: Option<u32>,
            lowlink: u32,
            on_stack: bool,
        }
        let n = program.funcs.len();
        let mut state = vec![
            NodeState {
                index: None,
                lowlink: 0,
                on_stack: false,
            };
            n
        ];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0u32;
        let mut scc_of = vec![usize::MAX; n];
        let mut scc_count = 0usize;
        let mut scc_sizes: Vec<usize> = Vec::new();
        // Components are discovered callee-first, which is exactly the
        // bottom-up order we want.
        let mut order: Vec<FuncId> = Vec::new();

        for start in 0..n {
            if state[start].index.is_some() {
                continue;
            }
            // Explicit DFS stack: (node, next-callee-cursor).
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&(v, cursor)) = dfs.last() {
                if cursor == 0 {
                    state[v].index = Some(next_index);
                    state[v].lowlink = next_index;
                    next_index += 1;
                    stack.push(v);
                    state[v].on_stack = true;
                }
                let callees = self
                    .callees
                    .get(&program.funcs[v].id)
                    .cloned()
                    .unwrap_or_default();
                if cursor < callees.len() {
                    dfs.last_mut().expect("nonempty").1 += 1;
                    let w = callees[cursor].index();
                    if state[w].index.is_none() {
                        dfs.push((w, 0));
                    } else if state[w].on_stack {
                        state[v].lowlink = state[v].lowlink.min(state[w].index.expect("indexed"));
                    }
                    continue;
                }
                // v finished.
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let vl = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(vl);
                }
                if Some(state[v].lowlink) == state[v].index {
                    let mut size = 0;
                    loop {
                        let w = stack.pop().expect("scc stack nonempty");
                        state[w].on_stack = false;
                        scc_of[w] = scc_count;
                        size += 1;
                        order.push(program.funcs[w].id);
                        if w == v {
                            break;
                        }
                    }
                    scc_sizes.push(size);
                    scc_count += 1;
                }
            }
        }
        for (i, &s) in scc_of.iter().enumerate() {
            self.scc.insert(program.funcs[i].id, s);
        }
        self.scc_size = scc_sizes;
        self.order = order;
    }
}

fn collect_block(block: &Block, f: &mut impl FnMut(&str)) {
    for stmt in &block.stmts {
        collect_stmt(stmt, f);
    }
}

fn collect_stmt(stmt: &Stmt, f: &mut impl FnMut(&str)) {
    match &stmt.kind {
        StmtKind::VarDecl { init, .. } => init.iter().for_each(|e| collect_expr(e, f)),
        StmtKind::ShortDecl { init, .. } => init.iter().for_each(|e| collect_expr(e, f)),
        StmtKind::Assign { lhs, rhs, .. } => {
            lhs.iter().for_each(|e| collect_expr(e, f));
            rhs.iter().for_each(|e| collect_expr(e, f));
        }
        StmtKind::If { cond, then, els } => {
            collect_expr(cond, f);
            collect_block(then, f);
            if let Some(els) = els {
                collect_stmt(els, f);
            }
        }
        StmtKind::For {
            init,
            cond,
            post,
            body,
        } => {
            if let Some(init) = init {
                collect_stmt(init, f);
            }
            if let Some(cond) = cond {
                collect_expr(cond, f);
            }
            if let Some(post) = post {
                collect_stmt(post, f);
            }
            collect_block(body, f);
        }
        StmtKind::Return { exprs } => exprs.iter().for_each(|e| collect_expr(e, f)),
        StmtKind::Expr { expr } => collect_expr(expr, f),
        StmtKind::BlockStmt { block } => collect_block(block, f),
        StmtKind::Defer { call } => collect_expr(call, f),
        StmtKind::Switch {
            subject,
            cases,
            default,
        } => {
            collect_expr(subject, f);
            for case in cases {
                case.values.iter().for_each(|v| collect_expr(v, f));
                collect_block(&case.body, f);
            }
            if let Some(default) = default {
                collect_block(default, f);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Free { target, .. } => collect_expr(target, f),
    }
}

fn collect_expr(expr: &Expr, f: &mut impl FnMut(&str)) {
    match &expr.kind {
        ExprKind::Call { callee, args } => {
            f(callee);
            args.iter().for_each(|a| collect_expr(a, f));
        }
        ExprKind::Unary { operand, .. } => collect_expr(operand, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, f);
            collect_expr(rhs, f);
        }
        ExprKind::Field { base, .. } => collect_expr(base, f),
        ExprKind::Index { base, index } => {
            collect_expr(base, f);
            collect_expr(index, f);
        }
        ExprKind::SliceExpr { base, lo, hi } => {
            collect_expr(base, f);
            for bound in [lo, hi].into_iter().flatten() {
                collect_expr(bound, f);
            }
        }
        ExprKind::Builtin { args, .. } => args.iter().for_each(|a| collect_expr(a, f)),
        ExprKind::StructLit { fields, .. } => fields.iter().for_each(|e| collect_expr(e, f)),
        ExprKind::IntLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Nil
        | ExprKind::Ident(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_syntax::parse;

    fn order_names(src: &str) -> Vec<String> {
        let p = parse(src).unwrap();
        let cg = CallGraph::build(&p);
        cg.bottom_up()
            .iter()
            .map(|&f| p.funcs[f.index()].name.clone())
            .collect()
    }

    #[test]
    fn bottom_up_puts_callees_first() {
        let order = order_names("func a() { b()\n c() }\nfunc b() { c() }\nfunc c() {}\n");
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn detects_self_recursion() {
        let p = parse("func f(n int) int { if n < 1 { return 0 }\n return f(n-1) }\n").unwrap();
        let cg = CallGraph::build(&p);
        let f = p.funcs[0].id;
        assert!(cg.is_recursive(f));
        assert!(cg.call_unresolvable(f, f));
    }

    #[test]
    fn detects_mutual_recursion() {
        let p = parse(
            "func even(n int) bool { if n == 0 { return true }\n return odd(n-1) }\nfunc odd(n int) bool { if n == 0 { return false }\n return even(n-1) }\nfunc top() bool { return even(4) }\n",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        let even = p.funcs[0].id;
        let odd = p.funcs[1].id;
        let top = p.funcs[2].id;
        assert!(cg.is_recursive(even));
        assert!(cg.is_recursive(odd));
        assert!(!cg.is_recursive(top));
        assert!(cg.call_unresolvable(even, odd));
        assert!(!cg.call_unresolvable(top, even));
    }

    #[test]
    fn calls_found_in_all_positions() {
        let p = parse(
            "func g() int { return 1 }\nfunc f(n int) { if g() > 0 { }\n for i := g(); i < g(); i += g() { }\n defer print(g())\n s := make([]int, g())\n s[g()-1] = g() }\n",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        assert_eq!(cg.callees_of(p.funcs[1].id), &[p.funcs[0].id]);
    }

    #[test]
    fn order_covers_all_functions() {
        let order = order_names("func a() {}\nfunc b() { a() }\nfunc c() {}\n");
        assert_eq!(order.len(), 3);
    }
}
