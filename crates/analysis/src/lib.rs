//! # minigo-escape
//!
//! Go's escape analysis and GoFree's explicit-deallocation analyses,
//! reproduced from "GoFree: Reducing Garbage Collection via
//! Compiler-Inserted Freeing" (CGO 2025).
//!
//! The pipeline (fig. 4 of the paper):
//!
//! 1. [`build_func_graph`] constructs the escape graph for a function
//!    (definitions 4.1–4.5, table 2) with slice/map/call modeling (§4.6).
//! 2. [`solve()`](solve::solve) propagates escape properties to a fixpoint (fig. 5),
//!    including GoFree's completeness (§4.2) and lifetime (§4.3)
//!    constraints with leaf→root back-propagation.
//! 3. [`analyze()`](analyze::analyze) orchestrates the bottom-up inter-procedural pass (§4.4),
//!    extracting extended parameter tags with content tags, and selects the
//!    `ToFree` variables (definition 4.17).
//! 4. [`instrument()`](instrument::instrument) inserts `tcfree` statements at scope ends (§4.5).
//!
//! Two baseline analyses accompany it for the paper's table 3 comparison:
//! [`baseline::fast`] (O(N) Fast Escape Analysis) and [`baseline::conn`]
//! (an O(N³) connection-graph analysis that tracks indirect stores).
//!
//! ```
//! use minigo_escape::{analyze, instrument, AnalyzeOptions};
//! use minigo_syntax::frontend;
//!
//! # fn main() -> Result<(), minigo_syntax::Diagnostic> {
//! let src = "func f(n int) { s := make([]int, n)\n s[0] = 1 }\n";
//! let (program, mut res, types) = frontend(src)?;
//! let analysis = analyze(&program, &res, &types, &AnalyzeOptions::default());
//! let instrumented = instrument(&program, &mut res, &analysis);
//! let text = minigo_syntax::print_program(&instrumented);
//! assert!(text.contains("tcfree(s)"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod audit;
pub mod baseline;
pub mod build;
pub mod callgraph;
pub mod graph;
pub mod inline;
pub mod instrument;
pub mod liveness;
pub mod solve;
pub mod summary;

pub use analyze::{
    analyze, AllocPlace, Analysis, AnalysisStats, AnalyzeOptions, FreeTargets, Mode,
};
pub use audit::{audit, strip_unproven, AuditMode, AuditReport, AuditSite, AuditVerdict};
pub use build::{build_func_graph, AllocSite, BuildOptions, FuncGraph};
pub use callgraph::CallGraph;
pub use graph::{AllocKind, ContentOrigin, Edge, EscapeGraph, LocId, LocKind, Location, HEAP_LOC};
pub use inline::{inline_program, InlineOptions, InlineStats};
pub use instrument::{instrument, instrument_with_plan};
pub use liveness::{
    plan_placement, use_summaries, FreePlacement, PartialFree, PlacementPlan, PlacementStats,
    UseSummary,
};
pub use solve::{holds, points_to, solve, walk, SolveConfig, SolveStats};
pub use summary::{FuncSummary, SummaryDst, SummaryEdge};

/// Bytes charged for a map's hmap header plus its initial bucket — the
/// constant-size part of `make(map[K]V)` that can live on the stack when
/// the map does not escape.
pub const MAP_BASE_BYTES: u64 = 256;
