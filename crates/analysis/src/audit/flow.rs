//! The auditor's own data-flow machinery: a forward may-point-to
//! abstract interpretation over the instrumented AST plus a backward
//! variable liveness pass, both independent of the primary escape-graph
//! analysis (see DESIGN.md §8 for the independence argument).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use minigo_syntax::{
    Block, Builtin, Expr, ExprId, ExprKind, Func, Resolution, Stmt, StmtKind, Type, TypeInfo, UnOp,
    VarId,
};

/// An abstract heap object in the auditor's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum AbsObj {
    /// The object allocated by a `make`/`new`/`&T{}`/`append`-growth
    /// expression in the current function.
    Site(ExprId),
    /// A fresh object returned (result index `.1`) by the call at `.0`,
    /// per the callee's summary.
    CallFresh(ExprId, usize),
    /// The object a formal parameter referenced at entry.
    Param(usize),
    /// Anything the auditor cannot identify (loads from unknown storage,
    /// opaque call results). Never provable to free.
    Unknown,
}

/// How a reference was stored into an object — the field sensitivity of
/// the containment relation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum FieldKey {
    /// Through `*p`.
    Deref,
    /// Slice or map element.
    Elem,
    /// A named struct field.
    Field(String),
}

pub(crate) type ObjSet = BTreeSet<AbsObj>;
/// `(container, field) -> contained objects`, accumulated
/// flow-insensitively per function.
pub(crate) type Contains = BTreeMap<(AbsObj, FieldKey), ObjSet>;

/// The flow-sensitive part of the forward state.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct FlowState {
    /// May-point-to sets per variable.
    pub pts: BTreeMap<VarId, ObjSet>,
    /// Objects that may already be freed at this point. The flag is
    /// `true` while no allocation has happened since the free on any
    /// path — the condition under which a repeat free is the runtime's
    /// *tolerated* `AlreadyFree` bail rather than a storage-reuse hazard.
    pub freed: BTreeMap<AbsObj, bool>,
}

impl FlowState {
    fn join(&mut self, other: &FlowState) {
        for (v, set) in &other.pts {
            self.pts.entry(*v).or_default().extend(set.iter().copied());
        }
        for (o, tolerable) in &other.freed {
            self.freed
                .entry(*o)
                .and_modify(|t| *t = *t && *tolerable)
                .or_insert(*tolerable);
        }
    }

    /// Any allocation may reuse storage vacated by an earlier free:
    /// after it, repeat frees of those objects are no longer tolerable.
    fn clear_tolerable(&mut self) {
        for t in self.freed.values_mut() {
            *t = false;
        }
    }
}

/// What the auditor records at one `tcfree` site.
#[derive(Debug, Clone)]
pub(crate) struct SiteSnapshot {
    /// The may-point-to set of the freed expression.
    pub targets: ObjSet,
    /// The full flow state just before the free.
    pub state: FlowState,
    /// Variables (deref-)live after the free statement.
    pub live_after: BTreeSet<VarId>,
    /// Field refinement: a variable present here (always also in
    /// `live_after`) is only ever used again through the named struct
    /// fields, so the liveness conjunct may restrict its reach to those
    /// fields' contents (plus the struct objects themselves). Supports
    /// proving partial frees `tcfree(x.f)` while `x.g` stays live.
    pub live_fields_after: BTreeMap<VarId, BTreeSet<String>>,
}

/// Everything the forward+backward passes derive for one function.
#[derive(Debug, Clone, Default)]
pub(crate) struct FuncFlow {
    /// Per-free-site snapshots, keyed by the `Free` statement id.
    pub sites: HashMap<minigo_syntax::StmtId, SiteSnapshot>,
    /// The final containment relation.
    pub contains: Contains,
    /// Joined may-point-to sets of each result value over all exits.
    pub result_pts: Vec<ObjSet>,
    /// Parameters the function may free (directly or via callees).
    pub freed_params: Vec<bool>,
}

/// The interprocedural summary the auditor derives per function —
/// deliberately simpler than the primary analysis's `FuncSummary`
/// (content tags + back-propagation): just enough to classify results
/// and argument effects.
#[derive(Debug, Clone)]
pub(crate) struct FnSummary {
    /// Per result index: classification of the returned reference.
    pub results: Vec<ResSummary>,
    /// Per parameter: may the callee store the argument somewhere that
    /// outlives the call (escape)?
    pub leaks: Vec<bool>,
    /// Per parameter: may the callee free the argument's object?
    pub frees: Vec<bool>,
    /// Per parameter: may the callee touch the argument's referent at
    /// all? `false` only when every occurrence of the parameter in the
    /// callee is a bare pass-through into a position that is itself
    /// unused — derived syntactically, bottom-up, independently of the
    /// primary analysis's `UseSummary`. Lets the liveness pass ignore
    /// dead arguments at call sites (context-sensitive last use).
    pub uses: Vec<bool>,
}

/// Summary of one result position.
#[derive(Debug, Clone, Default)]
pub(crate) struct ResSummary {
    /// The result may be a fresh object the caller now owns.
    pub fresh: bool,
    /// The result may alias these parameters (§4.6.3 passthrough).
    pub aliases: Vec<usize>,
    /// The result may reference these parameters' objects *inside* a
    /// returned container.
    pub contains_params: Vec<usize>,
    /// The result may be anything (analysis gave up).
    pub opaque: bool,
}

impl FnSummary {
    /// The sound default: every result opaque, every argument may leak
    /// and may be freed. Used for recursion cycles and unknown callees.
    pub fn conservative(nparams: usize, nresults: usize) -> Self {
        FnSummary {
            results: (0..nresults)
                .map(|_| ResSummary {
                    opaque: true,
                    ..ResSummary::default()
                })
                .collect(),
            leaks: vec![true; nparams],
            frees: vec![true; nparams],
            uses: vec![true; nparams],
        }
    }

    /// Whether the parameter at `idx` may be used; out-of-range
    /// positions are conservatively used.
    pub fn param_used(&self, idx: usize) -> bool {
        self.uses.get(idx).copied().unwrap_or(true)
    }
}

/// Transitive containment closure of `roots` (all field keys).
pub(crate) fn closure(contains: &Contains, roots: &ObjSet) -> ObjSet {
    let mut out = roots.clone();
    let mut work: Vec<AbsObj> = roots.iter().copied().collect();
    while let Some(o) = work.pop() {
        for ((container, _), inner) in contains.iter() {
            if *container == o {
                for i in inner {
                    if out.insert(*i) {
                        work.push(*i);
                    }
                }
            }
        }
    }
    out
}

const MAX_LOOP_ITERS: usize = 64;

/// The forward abstract interpreter for one function.
pub(crate) struct FlowAnalyzer<'a> {
    pub res: &'a Resolution,
    pub types: &'a TypeInfo,
    pub summaries: &'a HashMap<String, FnSummary>,
    pub func: &'a Func,
    pub contains: Contains,
    /// Snapshot per Free site (last visit wins: the fixpoint state).
    pub sites: HashMap<minigo_syntax::StmtId, (ObjSet, FlowState)>,
    /// Result pts joined over all exits.
    pub result_pts: Vec<ObjSet>,
    pub freed_params: Vec<bool>,
    /// Per-loop break-state accumulators (stack).
    breaks: Vec<Vec<FlowState>>,
    /// Per-loop continue-state accumulators (stack).
    continues: Vec<Vec<FlowState>>,
}

impl<'a> FlowAnalyzer<'a> {
    pub fn new(
        res: &'a Resolution,
        types: &'a TypeInfo,
        summaries: &'a HashMap<String, FnSummary>,
        func: &'a Func,
    ) -> Self {
        FlowAnalyzer {
            res,
            types,
            summaries,
            func,
            contains: Contains::new(),
            sites: HashMap::new(),
            result_pts: vec![ObjSet::new(); func.results.len()],
            freed_params: vec![false; func.params.len()],
            breaks: Vec::new(),
            continues: Vec::new(),
        }
    }

    /// Runs the analysis over the whole function body.
    pub fn run(&mut self) {
        let mut state = FlowState::default();
        for (i, vid) in self.res.params_of(self.func.id).iter().enumerate() {
            if self.var_may_hold_refs(*vid) {
                state
                    .pts
                    .insert(*vid, std::iter::once(AbsObj::Param(i)).collect());
            }
        }
        if let Some(exit) = self.exec_block(&self.func.body, state) {
            // Implicit return of named results at fall-through.
            self.record_exit_from_named_results(&exit);
        }
    }

    fn var_may_hold_refs(&self, vid: VarId) -> bool {
        self.types
            .var(vid)
            .map(|t| self.types.contains_pointers(t))
            .unwrap_or(true)
    }

    fn expr_may_hold_refs(&self, e: &Expr) -> bool {
        match self.types.expr(e.id) {
            Some(t) => self.types.contains_pointers(t),
            // Synthesized (instrumented) expressions have no recorded
            // type; fall back to the declared variable type.
            None => match &e.kind {
                ExprKind::Ident(_) => self
                    .res
                    .def_of(e.id)
                    .map(|v| self.var_may_hold_refs(v))
                    .unwrap_or(true),
                _ => true,
            },
        }
    }

    fn record_exit_from_named_results(&mut self, state: &FlowState) {
        let results: Vec<VarId> = self.res.results_of(self.func.id).to_vec();
        for (i, vid) in results.iter().enumerate() {
            let set = state.pts.get(vid).cloned().unwrap_or_default();
            self.result_pts[i].extend(set);
        }
    }

    fn exec_block(&mut self, block: &Block, mut state: FlowState) -> Option<FlowState> {
        for stmt in &block.stmts {
            state = self.exec_stmt(stmt, state)?;
        }
        Some(state)
    }

    /// Executes one statement; `None` means control never falls through
    /// (return/break/continue/panic).
    fn exec_stmt(&mut self, stmt: &Stmt, mut state: FlowState) -> Option<FlowState> {
        match &stmt.kind {
            StmtKind::VarDecl { names, init, .. } | StmtKind::ShortDecl { names, init } => {
                let values = self.eval_rhs_list(names.len(), init, &mut state);
                for (idx, set) in values.into_iter().enumerate() {
                    if let Some(vid) = self.res.decl_of(stmt.id, idx) {
                        state.pts.insert(vid, set);
                    }
                }
                Some(state)
            }
            StmtKind::Assign { lhs, op, rhs } => {
                let values = self.eval_rhs_list(lhs.len(), rhs, &mut state);
                for (l, vs) in lhs.iter().zip(values) {
                    self.store(l, vs, op.is_some(), &mut state);
                }
                Some(state)
            }
            StmtKind::If { cond, then, els } => {
                self.eval(cond, &mut state);
                let then_out = self.exec_block(then, state.clone());
                let els_out = match els {
                    Some(e) => self.exec_stmt(e, state),
                    None => Some(state),
                };
                match (then_out, els_out) {
                    (Some(mut a), Some(b)) => {
                        a.join(&b);
                        Some(a)
                    }
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (None, None) => None,
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(init) = init {
                    state = self.exec_stmt(init, state)?;
                }
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                let mut head = state;
                for _ in 0..MAX_LOOP_ITERS {
                    let mut entry = head.clone();
                    if let Some(cond) = cond {
                        self.eval(cond, &mut entry);
                    }
                    let body_out = self.exec_block(body, entry);
                    let mut iter_end = FlowState::default();
                    let mut any = false;
                    if let Some(out) = body_out {
                        iter_end = out;
                        any = true;
                    }
                    for c in self
                        .continues
                        .last_mut()
                        .map(std::mem::take)
                        .unwrap_or_default()
                    {
                        if any {
                            iter_end.join(&c);
                        } else {
                            iter_end = c;
                            any = true;
                        }
                    }
                    if any {
                        if let Some(post) = post {
                            iter_end = self.exec_stmt(post, iter_end).unwrap_or_default();
                        }
                        let mut new_head = head.clone();
                        new_head.join(&iter_end);
                        if new_head == head {
                            break;
                        }
                        head = new_head;
                    } else {
                        break;
                    }
                }
                self.continues.pop();
                // Exit: condition-false at the head, plus every break.
                let mut exit = head.clone();
                if let Some(cond) = cond {
                    self.eval(cond, &mut exit);
                }
                let mut fallthrough = cond.is_some();
                for b in self.breaks.pop().unwrap_or_default() {
                    if fallthrough {
                        exit.join(&b);
                    } else {
                        exit = b;
                        fallthrough = true;
                    }
                }
                if fallthrough {
                    Some(exit)
                } else {
                    None
                }
            }
            StmtKind::Return { exprs } => {
                if exprs.is_empty() {
                    self.record_exit_from_named_results(&state);
                } else {
                    let values = self.eval_rhs_list(self.func.results.len(), exprs, &mut state);
                    for (i, set) in values.into_iter().enumerate() {
                        if i < self.result_pts.len() {
                            self.result_pts[i].extend(set);
                        }
                    }
                }
                None
            }
            StmtKind::Expr { expr } => {
                self.eval(expr, &mut state);
                Some(state)
            }
            StmtKind::BlockStmt { block } => self.exec_block(block, state),
            StmtKind::Defer { call } => {
                // The deferred call runs at function exit with captured
                // values: everything it can reach escapes the auditor's
                // per-statement reasoning.
                if let ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } = &call.kind {
                    for a in args {
                        let set = self.eval(a, &mut state);
                        self.escape(set);
                    }
                } else {
                    let set = self.eval(call, &mut state);
                    self.escape(set);
                }
                Some(state)
            }
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.eval(subject, &mut state);
                let mut out: Option<FlowState> = None;
                let join_into = |o: Option<FlowState>, out: &mut Option<FlowState>| {
                    if let Some(s) = o {
                        match out {
                            Some(acc) => acc.join(&s),
                            None => *out = Some(s),
                        }
                    }
                };
                for case in cases {
                    let mut s = state.clone();
                    for v in &case.values {
                        self.eval(v, &mut s);
                    }
                    let o = self.exec_block(&case.body, s);
                    join_into(o, &mut out);
                }
                match default {
                    Some(d) => {
                        let o = self.exec_block(d, state);
                        join_into(o, &mut out);
                    }
                    // No default: the subject may match no case.
                    None => join_into(Some(state), &mut out),
                }
                out
            }
            StmtKind::Break => {
                if let Some(b) = self.breaks.last_mut() {
                    b.push(state);
                }
                None
            }
            StmtKind::Continue => {
                if let Some(c) = self.continues.last_mut() {
                    c.push(state);
                }
                None
            }
            StmtKind::Free { target, .. } => {
                let targets = self.eval(target, &mut state);
                // Snapshot before mutating: the obligation is judged
                // against the state the free executes in.
                self.sites.insert(stmt.id, (targets.clone(), state.clone()));
                for o in targets {
                    if let AbsObj::Param(p) = o {
                        if let Some(fp) = self.freed_params.get_mut(p) {
                            *fp = true;
                        }
                    }
                    if !matches!(o, AbsObj::Unknown) {
                        state.freed.insert(o, true);
                    }
                }
                Some(state)
            }
        }
    }

    /// Evaluates a right-hand-side list: either a matching list of
    /// `want` expressions or a single multi-value call.
    fn eval_rhs_list(&mut self, want: usize, exprs: &[Expr], state: &mut FlowState) -> Vec<ObjSet> {
        if exprs.len() == 1 && want > 1 {
            if let ExprKind::Call { .. } = &exprs[0].kind {
                return self.eval_call_multi(&exprs[0], want, state);
            }
        }
        let mut out: Vec<ObjSet> = exprs.iter().map(|e| self.eval(e, state)).collect();
        out.resize(want, ObjSet::new());
        out
    }

    /// Records that `set`'s objects escape the function's reasoning
    /// (stored where the auditor cannot see).
    fn escape(&mut self, set: ObjSet) {
        if !set.is_empty() {
            self.contains
                .entry((AbsObj::Unknown, FieldKey::Elem))
                .or_default()
                .extend(set);
        }
    }

    /// Loads `key` out of every object in `base`.
    fn load(&self, base: &ObjSet, key: &FieldKey) -> ObjSet {
        let mut out = ObjSet::new();
        for o in base {
            if let Some(inner) = self.contains.get(&(*o, key.clone())) {
                out.extend(inner.iter().copied());
            }
            // Loads from objects the auditor did not build itself may
            // yield references it never saw stored.
            if !matches!(o, AbsObj::Site(_)) {
                out.insert(AbsObj::Unknown);
            }
        }
        out
    }

    /// Stores `vs` into the location denoted by lvalue `l`.
    fn store(&mut self, l: &Expr, vs: ObjSet, compound: bool, state: &mut FlowState) {
        match &l.kind {
            ExprKind::Ident(_) => {
                if let Some(vid) = self.res.def_of(l.id) {
                    if compound {
                        state.pts.entry(vid).or_default().extend(vs);
                    } else {
                        state.pts.insert(vid, vs);
                    }
                }
            }
            ExprKind::Index { base, index } => {
                let bset = self.eval(base, state);
                self.eval(index, state);
                // A map store may grow the table (an allocation).
                if matches!(self.types.expr(base.id), Some(Type::Map(_, _))) {
                    state.clear_tolerable();
                }
                for o in bset {
                    self.contains
                        .entry((o, FieldKey::Elem))
                        .or_default()
                        .extend(vs.iter().copied());
                }
            }
            ExprKind::Field { base, name } => {
                if matches!(self.types.expr(base.id), Some(Type::Named(_))) {
                    // Value-struct field store: fold into the variable's
                    // flattened reference set.
                    let mut merged = self.eval(base, state);
                    merged.extend(vs.iter().copied());
                    self.store(base, merged, true, state);
                } else {
                    let bset = self.eval(base, state);
                    for o in bset {
                        self.contains
                            .entry((o, FieldKey::Field(name.clone())))
                            .or_default()
                            .extend(vs.iter().copied());
                    }
                }
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => {
                let bset = self.eval(operand, state);
                for o in bset {
                    self.contains
                        .entry((o, FieldKey::Deref))
                        .or_default()
                        .extend(vs.iter().copied());
                }
            }
            _ => {
                // An lvalue shape the auditor does not model: give up on
                // these references.
                self.escape(vs);
            }
        }
    }

    /// Evaluates an expression's may-point-to set, applying side effects
    /// (allocation-site kills, call summaries) to `state`.
    fn eval(&mut self, e: &Expr, state: &mut FlowState) -> ObjSet {
        let typed_refs = self.expr_may_hold_refs(e);
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Nil => {
                ObjSet::new()
            }
            ExprKind::Ident(_) => {
                if !typed_refs {
                    return ObjSet::new();
                }
                self.res
                    .def_of(e.id)
                    .and_then(|v| state.pts.get(&v).cloned())
                    .unwrap_or_default()
            }
            ExprKind::Unary { op, operand } => match op {
                UnOp::Deref => {
                    let base = self.eval(operand, state);
                    if typed_refs {
                        self.load(&base, &FieldKey::Deref)
                    } else {
                        ObjSet::new()
                    }
                }
                UnOp::Addr => {
                    // &T{...} allocates a fresh object; &x aliases a
                    // variable's storage, which the auditor's
                    // object-granular domain cannot name.
                    if let ExprKind::StructLit { name, fields } = &operand.kind {
                        let site = AbsObj::Site(e.id);
                        state.clear_tolerable();
                        state.freed.remove(&site);
                        let field_names: Vec<String> = self
                            .types
                            .fields_of(name)
                            .map(|fs| fs.iter().map(|(n, _)| n.clone()).collect())
                            .unwrap_or_default();
                        for (i, f) in fields.iter().enumerate() {
                            let vs = self.eval(f, state);
                            let key = field_names
                                .get(i)
                                .map(|n| FieldKey::Field(n.clone()))
                                .unwrap_or(FieldKey::Elem);
                            if !vs.is_empty() {
                                self.contains.entry((site, key)).or_default().extend(vs);
                            }
                        }
                        std::iter::once(site).collect()
                    } else {
                        let inner = self.eval(operand, state);
                        self.escape(inner);
                        state.clear_tolerable();
                        std::iter::once(AbsObj::Unknown).collect()
                    }
                }
                UnOp::Neg | UnOp::Not => {
                    self.eval(operand, state);
                    ObjSet::new()
                }
            },
            ExprKind::Binary { lhs, rhs, .. } => {
                self.eval(lhs, state);
                self.eval(rhs, state);
                ObjSet::new()
            }
            ExprKind::Field { base, name } => {
                let bset = self.eval(base, state);
                if !typed_refs {
                    return ObjSet::new();
                }
                if matches!(self.types.expr(base.id), Some(Type::Named(_))) {
                    // Value struct: flattened references.
                    bset
                } else {
                    self.load(&bset, &FieldKey::Field(name.clone()))
                }
            }
            ExprKind::Index { base, index } => {
                let bset = self.eval(base, state);
                self.eval(index, state);
                if typed_refs {
                    self.load(&bset, &FieldKey::Elem)
                } else {
                    ObjSet::new()
                }
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                // A reslice shares the base's backing array.
                let bset = self.eval(base, state);
                for bound in [lo, hi].into_iter().flatten() {
                    self.eval(bound, state);
                }
                bset
            }
            ExprKind::Call { .. } => self
                .eval_call_multi(e, 1, state)
                .into_iter()
                .next()
                .unwrap_or_default(),
            ExprKind::Builtin { kind, args, .. } => self.eval_builtin(e, *kind, args, state),
            ExprKind::StructLit { fields, .. } => {
                // A bare struct literal is a stack value: its reference
                // set is the union of its fields'.
                let mut out = ObjSet::new();
                for f in fields {
                    out.extend(self.eval(f, state));
                }
                out
            }
        }
    }

    fn eval_builtin(
        &mut self,
        e: &Expr,
        kind: Builtin,
        args: &[Expr],
        state: &mut FlowState,
    ) -> ObjSet {
        match kind {
            Builtin::Make | Builtin::New => {
                for a in args {
                    self.eval(a, state);
                }
                let site = AbsObj::Site(e.id);
                state.clear_tolerable();
                state.freed.remove(&site);
                std::iter::once(site).collect()
            }
            Builtin::Append => {
                let base = args
                    .first()
                    .map(|a| self.eval(a, state))
                    .unwrap_or_default();
                let val = args.get(1).map(|a| self.eval(a, state)).unwrap_or_default();
                let site = AbsObj::Site(e.id);
                state.clear_tolerable();
                state.freed.remove(&site);
                let mut out = base.clone();
                out.insert(site);
                if !val.is_empty() {
                    for o in &out {
                        self.contains
                            .entry((*o, FieldKey::Elem))
                            .or_default()
                            .extend(val.iter().copied());
                    }
                }
                // Growth copies the old elements into the new array.
                let carried = self.load(&base, &FieldKey::Elem);
                if !carried.is_empty() {
                    self.contains
                        .entry((site, FieldKey::Elem))
                        .or_default()
                        .extend(carried);
                }
                out
            }
            Builtin::Panic => {
                for a in args {
                    let set = self.eval(a, state);
                    self.escape(set);
                }
                ObjSet::new()
            }
            _ => {
                // len/cap/delete/print/itoa: evaluate operands for their
                // effects; no references produced.
                for a in args {
                    self.eval(a, state);
                }
                ObjSet::new()
            }
        }
    }

    /// Applies a call's summary; returns one may-point-to set per result.
    fn eval_call_multi(&mut self, e: &Expr, want: usize, state: &mut FlowState) -> Vec<ObjSet> {
        let ExprKind::Call { callee, args } = &e.kind else {
            return vec![ObjSet::new(); want];
        };
        let arg_sets: Vec<ObjSet> = args.iter().map(|a| self.eval(a, state)).collect();
        let summary = self
            .summaries
            .get(callee)
            .cloned()
            .unwrap_or_else(|| FnSummary::conservative(args.len(), want));
        for (i, set) in arg_sets.iter().enumerate() {
            if summary.leaks.get(i).copied().unwrap_or(true) {
                self.escape(set.clone());
            }
            if summary.frees.get(i).copied().unwrap_or(true) {
                for o in set {
                    if !matches!(o, AbsObj::Unknown) {
                        state.freed.insert(*o, false);
                        if let AbsObj::Param(p) = o {
                            // Transitively freeing our own caller's arg.
                            if let Some(fp) = self.freed_params.get_mut(*p) {
                                *fp = true;
                            }
                        }
                    }
                }
            }
        }
        // The callee may allocate: earlier frees lose tolerability.
        state.clear_tolerable();
        let mut out = Vec::with_capacity(want);
        for idx in 0..want {
            let mut set = ObjSet::new();
            match summary.results.get(idx) {
                Some(r) => {
                    if r.fresh {
                        let fresh = AbsObj::CallFresh(e.id, idx);
                        state.freed.remove(&fresh);
                        set.insert(fresh);
                        for p in &r.contains_params {
                            if let Some(ap) = arg_sets.get(*p) {
                                self.contains
                                    .entry((fresh, FieldKey::Elem))
                                    .or_default()
                                    .extend(ap.iter().copied());
                            }
                        }
                    }
                    for p in &r.aliases {
                        if let Some(ap) = arg_sets.get(*p) {
                            set.extend(ap.iter().copied());
                        }
                    }
                    if r.opaque {
                        set.insert(AbsObj::Unknown);
                    }
                }
                None => {
                    set.insert(AbsObj::Unknown);
                }
            }
            out.push(set);
        }
        out
    }
}

/// The backward liveness domain: live variables, with an optional
/// per-variable *field refinement*. A variable in `refined` (always also
/// in `vars`) is only ever used again through the named struct fields —
/// every other use path is dead — so the judge may restrict its reach to
/// those fields' contents. A bare (non-projection) use discards the
/// refinement.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct LiveSet {
    /// Variables live at this point.
    pub vars: BTreeSet<VarId>,
    /// Field-refined subset of `vars`.
    pub refined: BTreeMap<VarId, BTreeSet<String>>,
}

impl LiveSet {
    fn use_bare(&mut self, v: VarId) {
        self.vars.insert(v);
        self.refined.remove(&v);
    }

    fn use_field(&mut self, v: VarId, field: &str) {
        if self.vars.insert(v) {
            // First (backward) use seen: live through this field only.
            self.refined.entry(v).or_default().insert(field.to_string());
        } else if let Some(s) = self.refined.get_mut(&v) {
            s.insert(field.to_string());
        }
        // Already live unrefined: stays unrefined.
    }

    fn kill(&mut self, v: VarId) {
        self.vars.remove(&v);
        self.refined.remove(&v);
    }

    /// Path join: a variable is refined in the result only if no joined
    /// path uses it unrefined; its field set is the union over paths.
    fn join(&self, other: &LiveSet) -> LiveSet {
        let mut vars = self.vars.clone();
        vars.extend(other.vars.iter().copied());
        let mut refined = BTreeMap::new();
        for v in &vars {
            let a_full = self.vars.contains(v) && !self.refined.contains_key(v);
            let b_full = other.vars.contains(v) && !other.refined.contains_key(v);
            if a_full || b_full {
                continue;
            }
            let mut s: BTreeSet<String> = self.refined.get(v).cloned().unwrap_or_default();
            if let Some(x) = other.refined.get(v) {
                s.extend(x.iter().cloned());
            }
            refined.insert(*v, s);
        }
        LiveSet { vars, refined }
    }
}

/// Backward deref-liveness: computes, for every `Free` statement, the
/// set of variables live *after* it. A variable occurrence counts as a
/// use everywhere except as the direct target of a `Free` statement —
/// freeing a dangling reference is the runtime's tolerated path, while
/// any other use may reach the freed storage. Two refinements feed the
/// liveness-driven placement proofs: field projections (`x.f`) refine
/// rather than fully pin the base variable, and a bare argument handed
/// to a callee position the callee provably never uses
/// ([`FnSummary::uses`]) is not a use at all.
pub(crate) struct Liveness<'a> {
    res: &'a Resolution,
    func: &'a Func,
    summaries: &'a HashMap<String, FnSummary>,
    /// live-after sets per Free statement.
    pub live_after: HashMap<minigo_syntax::StmtId, LiveSet>,
    breaks: Vec<Vec<LiveSet>>,
    continues: Vec<Vec<LiveSet>>,
}

impl<'a> Liveness<'a> {
    pub fn new(
        res: &'a Resolution,
        func: &'a Func,
        summaries: &'a HashMap<String, FnSummary>,
    ) -> Self {
        Liveness {
            res,
            func,
            summaries,
            live_after: HashMap::new(),
            breaks: Vec::new(),
            continues: Vec::new(),
        }
    }

    pub fn run(&mut self) {
        // Named results are read by the caller at exit.
        let mut exit = LiveSet::default();
        for v in self.res.results_of(self.func.id) {
            exit.use_bare(*v);
        }
        let body = &self.func.body;
        self.back_block(body, exit);
    }

    fn uses(&self, e: &Expr, out: &mut LiveSet) {
        match &e.kind {
            ExprKind::Ident(_) => {
                if let Some(v) = self.res.def_of(e.id) {
                    out.use_bare(v);
                }
            }
            ExprKind::Field { base, name } => {
                if let ExprKind::Ident(_) = &base.kind {
                    if let Some(v) = self.res.def_of(base.id) {
                        out.use_field(v, name);
                        return;
                    }
                }
                self.uses(base, out);
            }
            ExprKind::Unary { operand, .. } => self.uses(operand, out),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.uses(lhs, out);
                self.uses(rhs, out);
            }
            ExprKind::Index { base, index } => {
                self.uses(base, out);
                self.uses(index, out);
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                self.uses(base, out);
                for b in [lo, hi].into_iter().flatten() {
                    self.uses(b, out);
                }
            }
            ExprKind::Call { callee, args } => {
                let sum = self.summaries.get(callee);
                for (i, a) in args.iter().enumerate() {
                    if matches!(a.kind, ExprKind::Ident(_))
                        && sum.map(|s| !s.param_used(i)).unwrap_or(false)
                    {
                        // Dead pass-through: the callee cannot touch the
                        // referent, so the argument stays dead here.
                        continue;
                    }
                    self.uses(a, out);
                }
            }
            ExprKind::Builtin { args, .. } => {
                for a in args {
                    self.uses(a, out);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.uses(f, out);
                }
            }
            _ => {}
        }
    }

    fn back_block(&mut self, block: &Block, mut live: LiveSet) -> LiveSet {
        for stmt in block.stmts.iter().rev() {
            live = self.back_stmt(stmt, live);
        }
        live
    }

    fn back_stmt(&mut self, stmt: &Stmt, live: LiveSet) -> LiveSet {
        match &stmt.kind {
            StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => {
                let mut l = live;
                for idx in 0.. {
                    match self.res.decl_of(stmt.id, idx) {
                        Some(v) => {
                            l.kill(v);
                        }
                        None => break,
                    }
                }
                for e in init {
                    self.uses(e, &mut l);
                }
                l
            }
            StmtKind::Assign { lhs, op, rhs } => {
                let mut l = live;
                for target in lhs {
                    if let ExprKind::Ident(_) = &target.kind {
                        if op.is_none() {
                            if let Some(v) = self.res.def_of(target.id) {
                                l.kill(v);
                            }
                        } else {
                            self.uses(target, &mut l);
                        }
                    } else {
                        self.uses(target, &mut l);
                    }
                }
                for e in rhs {
                    self.uses(e, &mut l);
                }
                l
            }
            StmtKind::If { cond, then, els } => {
                let then_in = self.back_block(then, live.clone());
                let els_in = match els {
                    Some(e) => self.back_stmt(e, live),
                    None => live,
                };
                let mut l = then_in.join(&els_in);
                self.uses(cond, &mut l);
                l
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                self.breaks.push(vec![live.clone()]);
                self.continues.push(Vec::new());
                let mut head = live.clone();
                for _ in 0..MAX_LOOP_ITERS {
                    let mut h = head.clone();
                    if let Some(cond) = cond {
                        self.uses(cond, &mut h);
                    }
                    // Continue jumps to post, i.e. to the head after post.
                    let mut post_in = h.clone();
                    if let Some(post) = post {
                        post_in = self.back_stmt(post, post_in);
                    }
                    if let Some(c) = self.continues.last_mut() {
                        c.clear();
                        c.push(post_in.clone());
                    }
                    let body_in = self.back_block(body, post_in);
                    let mut new_head = head.join(&body_in);
                    if let Some(cond) = cond {
                        self.uses(cond, &mut new_head);
                    }
                    if new_head == head {
                        break;
                    }
                    head = new_head;
                }
                self.breaks.pop();
                self.continues.pop();
                match init {
                    Some(init) => self.back_stmt(init, head),
                    None => head,
                }
            }
            StmtKind::Return { exprs } => {
                let mut l = LiveSet::default();
                if exprs.is_empty() {
                    for v in self.res.results_of(self.func.id) {
                        l.use_bare(*v);
                    }
                }
                for e in exprs {
                    self.uses(e, &mut l);
                }
                l
            }
            StmtKind::Expr { expr } => {
                let mut l = live;
                self.uses(expr, &mut l);
                l
            }
            StmtKind::BlockStmt { block } => self.back_block(block, live),
            StmtKind::Defer { call } => {
                let mut l = live;
                self.uses(call, &mut l);
                l
            }
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                let mut l = LiveSet::default();
                let mut first = true;
                for case in cases {
                    let case_in = self.back_block(&case.body, live.clone());
                    l = if first { case_in } else { l.join(&case_in) };
                    first = false;
                    let mut vals = LiveSet::default();
                    for v in &case.values {
                        self.uses(v, &mut vals);
                    }
                    l = l.join(&vals);
                }
                let dflt = match default {
                    Some(d) => self.back_block(d, live),
                    None => live,
                };
                l = if first { dflt } else { l.join(&dflt) };
                self.uses(subject, &mut l);
                l
            }
            StmtKind::Break => self
                .breaks
                .last()
                .and_then(|b| b.first())
                .cloned()
                .unwrap_or_default(),
            StmtKind::Continue => self
                .continues
                .last()
                .and_then(|c| c.first())
                .cloned()
                .unwrap_or_default(),
            StmtKind::Free { .. } => {
                // The target occurrence is not a use: freeing an already-
                // dead reference is the tolerated path.
                self.live_after.insert(stmt.id, live.clone());
                live
            }
        }
    }
}

/// Runs both passes over one function.
pub(crate) fn analyze_func(
    res: &Resolution,
    types: &TypeInfo,
    summaries: &HashMap<String, FnSummary>,
    func: &Func,
) -> FuncFlow {
    let mut fwd = FlowAnalyzer::new(res, types, summaries, func);
    fwd.run();
    let mut live = Liveness::new(res, func, summaries);
    live.run();
    let mut sites = HashMap::new();
    for (stmt, (targets, state)) in fwd.sites.drain() {
        let ls = live.live_after.get(&stmt).cloned().unwrap_or_default();
        sites.insert(
            stmt,
            SiteSnapshot {
                targets,
                state,
                live_after: ls.vars,
                live_fields_after: ls.refined,
            },
        );
    }
    FuncFlow {
        sites,
        contains: fwd.contains,
        result_pts: fwd.result_pts,
        freed_params: fwd.freed_params,
    }
}

/// Syntactic parameter-use walker: marks a parameter used on any
/// occurrence except a bare pass-through into a summarized callee
/// position that is itself unused. The auditor's independent counterpart
/// of the planner's `UseSummary` derivation.
pub(crate) fn param_uses(
    res: &Resolution,
    func: &Func,
    summaries: &HashMap<String, FnSummary>,
) -> Vec<bool> {
    let params: Vec<VarId> = res.params_of(func.id).to_vec();
    let mut used = vec![false; params.len()];
    fn expr(
        e: &Expr,
        res: &Resolution,
        params: &[VarId],
        summaries: &HashMap<String, FnSummary>,
        used: &mut [bool],
    ) {
        match &e.kind {
            ExprKind::Ident(_) => {
                if let Some(v) = res.def_of(e.id) {
                    if let Some(i) = params.iter().position(|p| *p == v) {
                        used[i] = true;
                    }
                }
            }
            ExprKind::Unary { operand, .. } => expr(operand, res, params, summaries, used),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr(lhs, res, params, summaries, used);
                expr(rhs, res, params, summaries, used);
            }
            ExprKind::Field { base, .. } => expr(base, res, params, summaries, used),
            ExprKind::Index { base, index } => {
                expr(base, res, params, summaries, used);
                expr(index, res, params, summaries, used);
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                expr(base, res, params, summaries, used);
                for b in [lo, hi].into_iter().flatten() {
                    expr(b, res, params, summaries, used);
                }
            }
            ExprKind::Call { callee, args } => {
                let sum = summaries.get(callee);
                for (i, a) in args.iter().enumerate() {
                    if matches!(a.kind, ExprKind::Ident(_))
                        && sum.map(|s| !s.param_used(i)).unwrap_or(false)
                    {
                        continue;
                    }
                    expr(a, res, params, summaries, used);
                }
            }
            ExprKind::Builtin { args, .. } => {
                for a in args {
                    expr(a, res, params, summaries, used);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    expr(f, res, params, summaries, used);
                }
            }
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Nil => {}
        }
    }
    fn stmt(
        s: &Stmt,
        res: &Resolution,
        params: &[VarId],
        summaries: &HashMap<String, FnSummary>,
        used: &mut [bool],
    ) {
        match &s.kind {
            StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => init
                .iter()
                .for_each(|e| expr(e, res, params, summaries, used)),
            StmtKind::Assign { lhs, rhs, .. } => lhs
                .iter()
                .chain(rhs)
                .for_each(|e| expr(e, res, params, summaries, used)),
            StmtKind::If { cond, then, els } => {
                expr(cond, res, params, summaries, used);
                block(then, res, params, summaries, used);
                if let Some(e) = els {
                    stmt(e, res, params, summaries, used);
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(i) = init {
                    stmt(i, res, params, summaries, used);
                }
                if let Some(c) = cond {
                    expr(c, res, params, summaries, used);
                }
                if let Some(p) = post {
                    stmt(p, res, params, summaries, used);
                }
                block(body, res, params, summaries, used);
            }
            StmtKind::Return { exprs } => exprs
                .iter()
                .for_each(|e| expr(e, res, params, summaries, used)),
            StmtKind::Expr { expr: e } => expr(e, res, params, summaries, used),
            StmtKind::BlockStmt { block: b } => block(b, res, params, summaries, used),
            StmtKind::Defer { call } => expr(call, res, params, summaries, used),
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                expr(subject, res, params, summaries, used);
                for case in cases {
                    case.values
                        .iter()
                        .for_each(|v| expr(v, res, params, summaries, used));
                    block(&case.body, res, params, summaries, used);
                }
                if let Some(d) = default {
                    block(d, res, params, summaries, used);
                }
            }
            // Freeing a parameter's object touches it: a caller must not
            // advance its own free past this call.
            StmtKind::Free { target, .. } => expr(target, res, params, summaries, used),
            StmtKind::Break | StmtKind::Continue => {}
        }
    }
    fn block(
        b: &Block,
        res: &Resolution,
        params: &[VarId],
        summaries: &HashMap<String, FnSummary>,
        used: &mut [bool],
    ) {
        for s in &b.stmts {
            stmt(s, res, params, summaries, used);
        }
    }
    block(&func.body, res, &params, summaries, &mut used);
    used
}

/// Derives a callee summary from a completed per-function analysis.
pub(crate) fn summarize(
    func: &Func,
    res: &Resolution,
    flow: &FuncFlow,
    summaries: &HashMap<String, FnSummary>,
) -> FnSummary {
    let nparams = func.params.len();
    let roots: ObjSet = std::iter::once(AbsObj::Unknown)
        .chain((0..nparams).map(AbsObj::Param))
        .collect();
    let escaped = closure(&flow.contains, &roots);

    // Objects reachable from each result, for cross-result aliasing.
    let result_reach: Vec<ObjSet> = flow
        .result_pts
        .iter()
        .map(|s| closure(&flow.contains, s))
        .collect();

    let mut results = Vec::with_capacity(flow.result_pts.len());
    for (idx, set) in flow.result_pts.iter().enumerate() {
        let mut r = ResSummary::default();
        for o in set {
            match o {
                AbsObj::Param(p) => r.aliases.push(*p),
                AbsObj::Unknown => r.opaque = true,
                AbsObj::Site(_) | AbsObj::CallFresh(_, _) => {
                    r.fresh = true;
                    if escaped.contains(o) {
                        // The "fresh" object also escaped somewhere the
                        // caller cannot see — not safely caller-owned.
                        r.opaque = true;
                    }
                }
            }
        }
        // A result whose reachable objects overlap another result's
        // (beyond shared params) must stay opaque: two CallFresh tags
        // would wrongly look disjoint to the caller.
        for (jdx, other) in result_reach.iter().enumerate() {
            if jdx == idx {
                continue;
            }
            if result_reach[idx].iter().any(|o| {
                matches!(o, AbsObj::Site(_) | AbsObj::CallFresh(_, _)) && other.contains(o)
            }) {
                r.opaque = true;
            }
        }
        // Params reachable *inside* the returned container.
        for o in &result_reach[idx] {
            if let AbsObj::Param(p) = o {
                if !r.aliases.contains(p) {
                    r.contains_params.push(*p);
                }
            }
        }
        results.push(r);
    }

    let mut leaks = vec![false; nparams];
    for (i, leak) in leaks.iter_mut().enumerate() {
        // Param(i) stored under Unknown or under another param's object.
        let other_roots: ObjSet = std::iter::once(AbsObj::Unknown)
            .chain((0..nparams).filter(|p| *p != i).map(AbsObj::Param))
            .collect();
        if closure(&flow.contains, &other_roots).contains(&AbsObj::Param(i)) {
            *leak = true;
        }
    }

    FnSummary {
        results,
        leaks,
        frees: flow.freed_params.clone(),
        uses: param_uses(res, func, summaries),
    }
}
