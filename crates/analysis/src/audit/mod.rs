//! The free-safety auditor: an independent verification pass over the
//! *instrumented* AST.
//!
//! After GoFree's primary analysis (§4.1–§4.4) has decided where to
//! insert `tcfree`/`TcfreeSlice`/`TcfreeMap`, this module re-derives —
//! from scratch, SafeDrop-style, sharing no code or data with the
//! escape-graph fixpoint — a proof obligation for every inserted free
//! site:
//!
//! > no variable live after this statement may point into the freed
//! > object (or its backing store).
//!
//! The auditor runs its own forward may-point-to abstract interpretation
//! (alias sets per statement, field-keyed containment, loop fixpoints)
//! and its own backward liveness pass (see [`flow`]), plus a small
//! bottom-up callee-summary layer for the paper's §4.4/§4.6.3
//! cross-call ownership patterns. Each site gets an [`AuditVerdict`];
//! under [`AuditMode::Deny`] the pipeline strips every `Unproven` site
//! before execution ([`strip_unproven`]).
//!
//! The dynamic counterpart is the shadow-heap sanitizer in
//! `minigo-runtime` — `audit deny` (static) and `--sanitize` (dynamic)
//! cross-validate each other over the workload corpus and the fuzz
//! generator.

mod flow;

use std::collections::{HashMap, HashSet};

use minigo_syntax::{
    Block, Expr, ExprKind, FreeKind, Func, Program, Resolution, Span, Stmt, StmtId, StmtKind,
    TypeInfo,
};

use flow::{analyze_func, closure, summarize, AbsObj, FieldKey, FnSummary, FuncFlow, ObjSet};

/// How the pipeline reacts to the auditor's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AuditMode {
    /// Do not run the auditor.
    #[default]
    Off,
    /// Run it and report unproven sites, but execute the program as
    /// instrumented.
    Warn,
    /// Run it and strip every unproven free before execution, counting
    /// the suppressions in `Metrics::frees_suppressed`.
    Deny,
}

impl std::fmt::Display for AuditMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditMode::Off => write!(f, "off"),
            AuditMode::Warn => write!(f, "warn"),
            AuditMode::Deny => write!(f, "deny"),
        }
    }
}

impl std::str::FromStr for AuditMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(AuditMode::Off),
            "warn" => Ok(AuditMode::Warn),
            "deny" => Ok(AuditMode::Deny),
            other => Err(format!(
                "unknown audit mode {other:?} (expected off, warn, or deny)"
            )),
        }
    }
}

/// The auditor's judgement on one free site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The proof obligation was discharged: no live variable can reach
    /// the freed storage, and the object cannot already be freed.
    Proved,
    /// Discharged except that the object may already have been freed on
    /// some path — with no intervening allocation, so the runtime's §5
    /// `AlreadyFree` bail tolerates the repeat free.
    ProvedDoubleFreeTolerated,
    /// The obligation could not be discharged; the reason names the
    /// failing conjunct (also reused by `minigo --explain`).
    Unproven(String),
}

impl AuditVerdict {
    /// Whether this verdict discharges the site's proof obligation.
    pub fn is_proved(&self) -> bool {
        !matches!(self, AuditVerdict::Unproven(_))
    }
}

impl std::fmt::Display for AuditVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditVerdict::Proved => write!(f, "proved"),
            AuditVerdict::ProvedDoubleFreeTolerated => {
                write!(f, "proved (tolerated double free)")
            }
            AuditVerdict::Unproven(reason) => write!(f, "UNPROVEN: {reason}"),
        }
    }
}

/// One audited `tcfree` site.
#[derive(Debug, Clone)]
pub struct AuditSite {
    /// The `Free` statement's id.
    pub stmt: StmtId,
    /// The enclosing function's name.
    pub func: String,
    /// The freed expression rendered as source (usually a variable name).
    pub target: String,
    /// Which `tcfree` family member the site calls.
    pub kind: FreeKind,
    /// The site's source span (synthetic for compiler-inserted frees).
    pub span: Span,
    /// The auditor's judgement.
    pub verdict: AuditVerdict,
}

/// The auditor's report over a whole program.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Every free site in the instrumented program, in source order.
    pub sites: Vec<AuditSite>,
}

impl AuditReport {
    /// Number of sites whose obligation was discharged (including
    /// tolerated double frees).
    pub fn proved(&self) -> usize {
        self.sites.iter().filter(|s| s.verdict.is_proved()).count()
    }

    /// The unproven sites.
    pub fn unproven(&self) -> impl Iterator<Item = &AuditSite> {
        self.sites.iter().filter(|s| !s.verdict.is_proved())
    }

    /// Fraction of sites proved; 1.0 for a program with no free sites.
    pub fn proof_rate(&self) -> f64 {
        if self.sites.is_empty() {
            1.0
        } else {
            self.proved() as f64 / self.sites.len() as f64
        }
    }

    /// A human-readable multi-line rendering (one line per site).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.sites {
            out.push_str(&format!(
                "{}: {}({}) in {}: {}\n",
                if s.span.is_empty() {
                    "<inserted>".to_string()
                } else {
                    format!("@{}..{}", s.span.start, s.span.end)
                },
                s.kind,
                s.target,
                s.func,
                s.verdict
            ));
        }
        out
    }
}

/// Renders a free target expression for diagnostics.
fn render_target(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Ident(name) => name.clone(),
        ExprKind::Field { base, name } => format!("{}.{}", render_target(base), name),
        _ => "<expr>".to_string(),
    }
}

/// Audits every `tcfree` site of an instrumented program.
///
/// Deliberately takes only the front-end artifacts — not the primary
/// [`crate::Analysis`] — so a bug in the escape-graph fixpoint cannot
/// propagate into the proofs (the independence argument, DESIGN.md §8).
pub fn audit(program: &Program, res: &Resolution, types: &TypeInfo) -> AuditReport {
    // Bottom-up callee summaries; recursion cycles stay conservative.
    let mut summaries: HashMap<String, FnSummary> = HashMap::new();
    let mut flows: HashMap<String, FuncFlow> = HashMap::new();
    let mut visiting: HashSet<String> = HashSet::new();
    for func in &program.funcs {
        summarize_func(
            program,
            res,
            types,
            func,
            &mut summaries,
            &mut flows,
            &mut visiting,
        );
    }

    let mut report = AuditReport::default();
    for func in &program.funcs {
        let Some(fl) = flows.get(&func.name) else {
            continue;
        };
        collect_sites(func, &func.body, fl, &mut report);
    }
    report
}

fn summarize_func(
    program: &Program,
    res: &Resolution,
    types: &TypeInfo,
    func: &Func,
    summaries: &mut HashMap<String, FnSummary>,
    flows: &mut HashMap<String, FuncFlow>,
    visiting: &mut HashSet<String>,
) {
    if summaries.contains_key(&func.name) || visiting.contains(&func.name) {
        return;
    }
    visiting.insert(func.name.clone());
    // Analyze callees first so their summaries are precise; members of a
    // recursion cycle fall back to `FnSummary::conservative` (the lookup
    // miss in `eval_call_multi`).
    for callee in callees_of(&func.body) {
        if let Some(cf) = program.funcs.iter().find(|f| f.name == callee) {
            summarize_func(program, res, types, cf, summaries, flows, visiting);
        }
    }
    let fl = analyze_func(res, types, summaries, func);
    let summary = summarize(func, res, &fl, summaries);
    summaries.insert(func.name.clone(), summary);
    flows.insert(func.name.clone(), fl);
    visiting.remove(&func.name);
}

fn callees_of(block: &Block) -> Vec<String> {
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        if let ExprKind::Call { callee, args } = &e.kind {
            out.push(callee.clone());
            for a in args {
                walk_expr(a, out);
            }
            return;
        }
        match &e.kind {
            ExprKind::Unary { operand, .. } => walk_expr(operand, out),
            ExprKind::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            ExprKind::Field { base, .. } => walk_expr(base, out),
            ExprKind::Index { base, index } => {
                walk_expr(base, out);
                walk_expr(index, out);
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                walk_expr(base, out);
                for b in [lo, hi].into_iter().flatten() {
                    walk_expr(b, out);
                }
            }
            ExprKind::Builtin { args, .. } => {
                for a in args {
                    walk_expr(a, out);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    walk_expr(f, out);
                }
            }
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<String>) {
        match &s.kind {
            StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => {
                init.iter().for_each(|e| walk_expr(e, out))
            }
            StmtKind::Assign { lhs, rhs, .. } => {
                lhs.iter().chain(rhs).for_each(|e| walk_expr(e, out))
            }
            StmtKind::If { cond, then, els } => {
                walk_expr(cond, out);
                walk_block(then, out);
                if let Some(e) = els {
                    walk_stmt(e, out);
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(i) = init {
                    walk_stmt(i, out);
                }
                if let Some(c) = cond {
                    walk_expr(c, out);
                }
                if let Some(p) = post {
                    walk_stmt(p, out);
                }
                walk_block(body, out);
            }
            StmtKind::Return { exprs } => exprs.iter().for_each(|e| walk_expr(e, out)),
            StmtKind::Expr { expr } => walk_expr(expr, out),
            StmtKind::BlockStmt { block } => walk_block(block, out),
            StmtKind::Defer { call } => walk_expr(call, out),
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                walk_expr(subject, out);
                for case in cases {
                    case.values.iter().for_each(|v| walk_expr(v, out));
                    walk_block(&case.body, out);
                }
                if let Some(d) = default {
                    walk_block(d, out);
                }
            }
            StmtKind::Free { target, .. } => walk_expr(target, out),
            StmtKind::Break | StmtKind::Continue => {}
        }
    }
    fn walk_block(b: &Block, out: &mut Vec<String>) {
        for s in &b.stmts {
            walk_stmt(s, out);
        }
    }
    let mut out = Vec::new();
    walk_block(block, &mut out);
    out
}

/// Walks a function collecting verdicts for its `Free` statements, in
/// source order.
fn collect_sites(func: &Func, block: &Block, fl: &FuncFlow, report: &mut AuditReport) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Free { target, kind } => {
                let verdict = judge(stmt.id, fl);
                report.sites.push(AuditSite {
                    stmt: stmt.id,
                    func: func.name.clone(),
                    target: render_target(target),
                    kind: *kind,
                    span: stmt.span,
                    verdict,
                });
            }
            StmtKind::If { then, els, .. } => {
                collect_sites(func, then, fl, report);
                if let Some(e) = els {
                    collect_sites_stmt(func, e, fl, report);
                }
            }
            StmtKind::For { body, .. } => collect_sites(func, body, fl, report),
            StmtKind::BlockStmt { block } => collect_sites(func, block, fl, report),
            StmtKind::Switch { cases, default, .. } => {
                for case in cases {
                    collect_sites(func, &case.body, fl, report);
                }
                if let Some(d) = default {
                    collect_sites(func, d, fl, report);
                }
            }
            _ => {}
        }
    }
}

fn collect_sites_stmt(func: &Func, stmt: &Stmt, fl: &FuncFlow, report: &mut AuditReport) {
    // Wrap a lone statement (else-if chain) as a one-statement walk.
    match &stmt.kind {
        StmtKind::If { then, els, .. } => {
            collect_sites(func, then, fl, report);
            if let Some(e) = els {
                collect_sites_stmt(func, e, fl, report);
            }
        }
        StmtKind::BlockStmt { block } => collect_sites(func, block, fl, report),
        _ => {}
    }
}

/// Judges one free site against its recorded snapshot.
fn judge(stmt: StmtId, fl: &FuncFlow) -> AuditVerdict {
    let Some(snap) = fl.sites.get(&stmt) else {
        // Unreachable code: the free never executes.
        return AuditVerdict::Proved;
    };
    if snap.targets.is_empty() {
        // Provably nil (or a non-reference): freeing nil is a no-op.
        return AuditVerdict::Proved;
    }
    for o in &snap.targets {
        match o {
            AbsObj::Unknown => {
                return AuditVerdict::Unproven(
                    "the freed reference may point to storage of unknown provenance".to_string(),
                )
            }
            AbsObj::Param(p) => {
                return AuditVerdict::Unproven(format!(
                    "the freed reference may point to caller-provided storage (parameter {p})"
                ))
            }
            _ => {}
        }
    }
    // Escape: the target reachable from anything the caller (or a defer)
    // can still see. Parameters are caller-visible roots unconditionally.
    let roots: ObjSet = std::iter::once(AbsObj::Unknown)
        .chain((0..fl.freed_params.len()).map(AbsObj::Param))
        .collect();
    let escaped = closure(&fl.contains, &roots);
    if snap.targets.iter().any(|o| escaped.contains(o)) {
        return AuditVerdict::Unproven(
            "the freed object may have escaped into caller-visible or deferred storage".to_string(),
        );
    }
    // Liveness: no live variable may reach the freed object. A variable
    // whose remaining uses are all projections of specific struct fields
    // (`live_fields_after`) only reaches the struct objects themselves
    // plus the contents of those fields — the refinement that proves
    // partial frees `tcfree(x.f)` while `x.g` stays live.
    for v in &snap.live_after {
        let Some(vp) = snap.state.pts.get(v) else {
            continue;
        };
        let reach = match snap.live_fields_after.get(v) {
            Some(fields) => {
                let mut roots = ObjSet::new();
                for o in vp {
                    for f in fields {
                        if let Some(inner) = fl.contains.get(&(*o, FieldKey::Field(f.clone()))) {
                            roots.extend(inner.iter().copied());
                        }
                    }
                }
                let mut r = closure(&fl.contains, &roots);
                r.extend(vp.iter().copied());
                r
            }
            None => closure(&fl.contains, vp),
        };
        if reach.iter().any(|o| snap.targets.contains(o)) {
            return AuditVerdict::Unproven(format!(
                "a variable live after the free (var #{}) may reference the freed object",
                v.0
            ));
        }
    }
    // Double free: tolerated only when no allocation could have reused
    // the storage since the earlier free.
    let doubled: Vec<&AbsObj> = snap
        .targets
        .iter()
        .filter(|o| snap.state.freed.contains_key(o))
        .collect();
    if !doubled.is_empty() {
        if doubled
            .iter()
            .all(|o| snap.state.freed.get(o).copied().unwrap_or(false))
        {
            return AuditVerdict::ProvedDoubleFreeTolerated;
        }
        return AuditVerdict::Unproven(
            "the object may already be freed, with intervening allocations that may have \
             reused its storage"
                .to_string(),
        );
    }
    AuditVerdict::Proved
}

/// Removes every `Free` statement in `unproven` from a clone of
/// `program`, returning the stripped program and the number of sites
/// removed. Used by the pipeline under [`AuditMode::Deny`].
pub fn strip_unproven(program: &Program, report: &AuditReport) -> (Program, u64) {
    let unproven: HashSet<StmtId> = report.unproven().map(|s| s.stmt).collect();
    if unproven.is_empty() {
        return (program.clone(), 0);
    }
    let mut stripped = program.clone();
    let mut removed = 0u64;
    for func in &mut stripped.funcs {
        strip_block(&mut func.body, &unproven, &mut removed);
    }
    (stripped, removed)
}

fn strip_block(block: &mut Block, unproven: &HashSet<StmtId>, removed: &mut u64) {
    block.stmts.retain(|s| {
        let drop = matches!(s.kind, StmtKind::Free { .. }) && unproven.contains(&s.id);
        if drop {
            *removed += 1;
        }
        !drop
    });
    for stmt in &mut block.stmts {
        strip_stmt(stmt, unproven, removed);
    }
}

fn strip_stmt(stmt: &mut Stmt, unproven: &HashSet<StmtId>, removed: &mut u64) {
    match &mut stmt.kind {
        StmtKind::If { then, els, .. } => {
            strip_block(then, unproven, removed);
            if let Some(e) = els {
                strip_stmt(e, unproven, removed);
            }
        }
        StmtKind::For { body, .. } => strip_block(body, unproven, removed),
        StmtKind::BlockStmt { block } => strip_block(block, unproven, removed),
        StmtKind::Switch { cases, default, .. } => {
            for case in cases {
                strip_block(&mut case.body, unproven, removed);
            }
            if let Some(d) = default {
                strip_block(d, unproven, removed);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_syntax::{parse, resolve, typecheck};

    fn audited(src: &str) -> AuditReport {
        let program = parse(src).unwrap();
        let mut res = resolve(&program).unwrap();
        let types = typecheck(&program, &res).unwrap();
        let analysis = crate::analyze(&program, &res, &types, &crate::AnalyzeOptions::default());
        let program = crate::instrument(&program, &mut res, &analysis);
        audit(&program, &res, &types)
    }

    #[test]
    fn local_scratch_slice_is_proved() {
        let r =
            audited("func main() { n := 100\n s := make([]int, n)\n s[0] = 1\n print(s[0]) }\n");
        assert_eq!(r.sites.len(), 1, "{:?}", r);
        assert_eq!(r.sites[0].verdict, AuditVerdict::Proved);
        assert!((r.proof_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hand_written_premature_free_is_unproven() {
        // tcfree followed by a live read of the same slice.
        let program =
            parse("func main() { s := make([]int, 64)\n s[0] = 7\n tcfree(s)\n print(s[0]) }\n")
                .unwrap();
        let res = resolve(&program).unwrap();
        let types = typecheck(&program, &res).unwrap();
        let r = audit(&program, &res, &types);
        assert_eq!(r.sites.len(), 1);
        assert!(
            !r.sites[0].verdict.is_proved(),
            "premature free must not verify: {:?}",
            r.sites[0].verdict
        );
    }

    #[test]
    fn returned_slice_free_is_unproven() {
        let program = parse(
            "func f() []int { s := make([]int, 8)\n tcfree(s)\n return s }\nfunc main() { print(len(f())) }\n",
        )
        .unwrap();
        let res = resolve(&program).unwrap();
        let types = typecheck(&program, &res).unwrap();
        let r = audit(&program, &res, &types);
        assert_eq!(r.sites.len(), 1);
        assert!(!r.sites[0].verdict.is_proved());
    }

    #[test]
    fn adjacent_alias_free_is_tolerated() {
        let program = parse(
            "func main() { s := make([]int, 8)\n w := s[0:4]\n s[0] = len(w)\n tcfree(s)\n tcfree(w) }\n",
        )
        .unwrap();
        let res = resolve(&program).unwrap();
        let types = typecheck(&program, &res).unwrap();
        let r = audit(&program, &res, &types);
        assert_eq!(r.sites.len(), 2);
        assert_eq!(r.sites[0].verdict, AuditVerdict::Proved);
        assert_eq!(r.sites[1].verdict, AuditVerdict::ProvedDoubleFreeTolerated);
    }

    #[test]
    fn alias_free_with_intervening_alloc_is_unproven() {
        let program = parse(
            "func main() { s := make([]int, 8)\n w := s[0:4]\n tcfree(s)\n t := make([]int, 8)\n t[0] = 1\n tcfree(w)\n print(t[0]) }\n",
        )
        .unwrap();
        let res = resolve(&program).unwrap();
        let types = typecheck(&program, &res).unwrap();
        let r = audit(&program, &res, &types);
        assert_eq!(r.sites.len(), 2);
        assert!(!r.sites[1].verdict.is_proved());
    }

    #[test]
    fn factory_result_free_in_caller_is_proved() {
        // §4.4 content tags: caller frees the callee-allocated map.
        let r = audited(
            "func mk() map[int]int { m := make(map[int]int)\n m[1] = 2\n return m }\nfunc main() { m := mk()\n print(m[1]) }\n",
        );
        assert!(
            r.sites.iter().all(|s| s.verdict.is_proved()),
            "{}",
            r.render()
        );
    }

    #[test]
    fn escaped_into_param_is_unproven() {
        let program = parse(
            "type Box struct { p []int }\nfunc fill(b *Box) { s := make([]int, 4)\n b.p = s\n tcfree(s) }\nfunc main() { b := &Box{nil}\n fill(b)\n print(len(b.p)) }\n",
        )
        .unwrap();
        let res = resolve(&program).unwrap();
        let types = typecheck(&program, &res).unwrap();
        let r = audit(&program, &res, &types);
        let fill_site = r.sites.iter().find(|s| s.func == "fill").unwrap();
        assert!(!fill_site.verdict.is_proved(), "{}", r.render());
    }

    #[test]
    fn loop_local_free_is_proved() {
        let r = audited(
            "func main() { total := 0\n n := 64\n for i := 0; i < 10; i += 1 { s := make([]int, n)\n s[0] = i\n total += s[0] }\n print(total) }\n",
        );
        assert_eq!(r.sites.len(), 1, "{}", r.render());
        assert_eq!(r.sites[0].verdict, AuditVerdict::Proved);
    }

    #[test]
    fn strip_removes_only_unproven() {
        let program =
            parse("func main() { s := make([]int, 8)\n tcfree(s)\n print(s[0]) }\n").unwrap();
        let res = resolve(&program).unwrap();
        let types = typecheck(&program, &res).unwrap();
        let report = audit(&program, &res, &types);
        assert_eq!(report.proved(), 0);
        let (stripped, removed) = strip_unproven(&program, &report);
        assert_eq!(removed, 1);
        let count = {
            fn frees(b: &Block) -> usize {
                b.stmts
                    .iter()
                    .map(|s| match &s.kind {
                        StmtKind::Free { .. } => 1,
                        StmtKind::BlockStmt { block } => frees(block),
                        StmtKind::If { then, .. } => frees(then),
                        StmtKind::For { body, .. } => frees(body),
                        _ => 0,
                    })
                    .sum()
            }
            stripped.funcs.iter().map(|f| frees(&f.body)).sum::<usize>()
        };
        assert_eq!(count, 0);
    }

    fn audited_lastuse(src: &str) -> (AuditReport, String) {
        let program = parse(src).unwrap();
        let mut res = resolve(&program).unwrap();
        let mut types = typecheck(&program, &res).unwrap();
        let analysis = crate::analyze(&program, &res, &types, &crate::AnalyzeOptions::default());
        let plan = crate::liveness::plan_placement(&program, &res, &types, &analysis);
        let program = crate::instrument_with_plan(&program, &mut res, &mut types, &analysis, &plan);
        let text = minigo_syntax::print_program(&program);
        (audit(&program, &res, &types), text)
    }

    #[test]
    fn advanced_free_is_proved() {
        let (r, text) = audited_lastuse(
            "func main() { n := 16\n s := make([]int, n)\n s[0] = 1\n t := make([]int, n)\n t[0] = s[0]\n print(t[0])\n print(n) }\n",
        );
        // s's free is advanced past t's tail uses; both sites prove.
        assert!(r.sites.len() >= 2, "{text}\n{}", r.render());
        assert!(
            r.sites.iter().all(|s| s.verdict.is_proved()),
            "{text}\n{}",
            r.render()
        );
        let free = text.find("tcfree(s)").expect(&text);
        let t_use = text.find("print(t[0])").expect(&text);
        assert!(free < t_use, "s freed before t's last use: {text}");
    }

    #[test]
    fn advance_past_dead_callee_arg_is_proved() {
        let (r, text) = audited_lastuse(
            "func g(s []int, n int) int { return n + 1 }\nfunc main() { n := 8\n s := make([]int, n)\n s[0] = 1\n x := g(s, 2)\n print(x)\n print(n) }\n",
        );
        let free = text.find("tcfree(s)").expect(&text);
        let call = text.find("g(s, 2)").expect(&text);
        assert!(free < call, "free advanced past the dead-arg call: {text}");
        assert!(
            r.sites.iter().all(|s| s.verdict.is_proved()),
            "auditor re-proves the dead-arg advance: {text}\n{}",
            r.render()
        );
    }

    #[test]
    fn ptr_struct_partial_free_is_proved_while_base_lives() {
        let (r, text) = audited_lastuse(
            "type T struct { a []int\n b map[int]int }\nfunc main() { n := 8\n x := &T{make([]int, n), make(map[int]int)}\n x.a[0] = 1\n print(x.a[0])\n x.b[1] = 2\n print(x.b[1])\n print(n) }\n",
        );
        assert!(text.contains("tcfree(x.a)"), "{text}");
        assert!(text.contains("tcfree(x.b)"), "{text}");
        let free_a = text.find("tcfree(x.a)").unwrap();
        let use_b = text.find("x.b[1] = 2").unwrap();
        assert!(free_a < use_b, "x.a freed while x.b still live: {text}");
        assert!(
            r.sites.iter().all(|s| s.verdict.is_proved()),
            "field-refined liveness proves the partial frees: {text}\n{}",
            r.render()
        );
        assert!(r.sites.iter().any(|s| s.target == "x.a"), "{}", r.render());
    }

    #[test]
    fn planted_premature_lastuse_free_stays_unproven() {
        // A hand-written free emulating a last-use misjudgment: the
        // auditor must refuse it even in a lastuse-planned program.
        let (r, _text) = audited_lastuse(
            "func main() { s := make([]int, 8)\n s[0] = 7\n tcfree(s)\n print(s[0]) }\n",
        );
        let site = r.sites.iter().find(|s| s.target == "s").unwrap();
        assert!(!site.verdict.is_proved(), "{}", r.render());
    }

    #[test]
    fn audit_mode_parses() {
        assert_eq!("warn".parse::<AuditMode>().unwrap(), AuditMode::Warn);
        assert_eq!("deny".parse::<AuditMode>().unwrap(), AuditMode::Deny);
        assert!("loud".parse::<AuditMode>().is_err());
        assert_eq!(AuditMode::Deny.to_string(), "deny");
    }
}
