//! Property propagation over the escape graph.
//!
//! Implements the paper's fig. 5 `walkall` algorithm: a work queue of root
//! locations; for each root, a reverse walk computes `MinDerefs(m, root)`
//! for every `m ∈ Holds(root)` (definitions 4.6–4.9) and applies the
//! constraints of definitions 4.10–4.16. GoFree's extension (fig. 5 lines
//! 10–13) also updates the *root* from its leaves (back-propagation), which
//! `Incomplete`, `Outlived`, and `PointsToHeap` need.
//!
//! Dereference counts are clamped to the small domain `[-1, CLAMP]`; only
//! `d == -1` (points-to) and `d <= 0` matter to any constraint, so clamping
//! preserves the solution while bounding each node to a constant number of
//! relaxations per walk — this is what keeps the whole pass O(N²).

use crate::graph::{EscapeGraph, LocId};

/// Upper clamp for dereference counts during walks.
const CLAMP: i32 = 2;

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolveConfig {
    /// Apply GoFree's completeness/lifetime constraints (§4.2, §4.3). When
    /// false, only Go's original `HeapAlloc` constraint runs — this is the
    /// "plain Go" mode used for the compilation-speed comparison.
    pub gofree: bool,
    /// Enable leaf→root back-propagation (fig. 5 lines 10–13). Disabling it
    /// is the ablation showing `Incomplete`/`Outlived` need it.
    pub back_propagation: bool,
    /// Skip roots whose reachable subgraph didn't change in the previous
    /// fixpoint pass. Every constraint is monotone and reads only the root
    /// and its walk cone, so a root whose cone is untouched re-derives the
    /// same facts — skipping it cannot change the (unique) fixpoint.
    /// Disabling this is the always-correct reference mode the equivalence
    /// test compares against.
    pub dirty_roots: bool,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            gofree: true,
            back_propagation: true,
            dirty_roots: true,
        }
    }
}

/// Counters describing one solve run (used by the complexity tests and the
/// compilation-speed experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of root walks performed.
    pub walks: usize,
    /// Number of edge relaxations across all walks.
    pub relaxations: usize,
    /// Number of outer fixpoint passes (should stay a small constant).
    pub passes: usize,
    /// Root walks skipped by dirty-root tracking (their cone was clean).
    pub skipped_walks: usize,
}

/// Computes `MinDerefs(m, root)` for every `m ∈ Holds(root)`.
///
/// Returns a dense vector indexed by location: `None` when
/// `m ∉ Holds(root)`. The entry for `root` itself is `Some(0)` (the empty
/// track), which callers typically skip.
pub fn walk(g: &EscapeGraph, root: LocId) -> Vec<Option<i32>> {
    walk_counting(g, root, &mut 0)
}

fn walk_counting(g: &EscapeGraph, root: LocId, relaxations: &mut usize) -> Vec<Option<i32>> {
    let mut dist: Vec<Option<i32>> = vec![None; g.len()];
    dist[root.index()] = Some(0);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    while let Some(cur) = queue.pop_front() {
        let d_cur = dist[cur.index()].expect("queued nodes have distances");
        for e in g.incoming(cur) {
            *relaxations += 1;
            // TrackDerefs recurrence (definition 4.7): extending the track
            // with an earlier edge clamps the running count at zero first.
            let base = if cur == root { 0 } else { d_cur.max(0) };
            let d_new = (base + e.derefs).min(CLAMP);
            let better = match dist[e.src.index()] {
                None => true,
                Some(old) => d_new < old,
            };
            if better {
                dist[e.src.index()] = Some(d_new);
                queue.push_back(e.src);
            }
        }
    }
    dist
}

/// `PointsTo(root)` (definition 4.9): locations whose address `root` may
/// hold, i.e. `MinDerefs(m, root) == -1`.
///
/// ```
/// use minigo_escape::{points_to, EscapeGraph, LocKind};
/// use minigo_syntax::VarId;
///
/// // p = &x; q = p
/// let mut g = EscapeGraph::new();
/// let x = g.add_location(LocKind::Var(VarId(0)), "x", 0, 1, true);
/// let p = g.add_location(LocKind::Var(VarId(1)), "p", 0, 1, true);
/// let q = g.add_location(LocKind::Var(VarId(2)), "q", 0, 1, true);
/// g.add_edge(x, p, -1);
/// g.add_edge(p, q, 0);
/// assert_eq!(points_to(&g, q), vec![x]);
/// ```
pub fn points_to(g: &EscapeGraph, root: LocId) -> Vec<LocId> {
    walk(g, root)
        .iter()
        .enumerate()
        .filter_map(|(i, d)| {
            let id = LocId(i as u32);
            (id != root && *d == Some(-1)).then_some(id)
        })
        .collect()
}

/// `Holds(root)` (definition 4.6): every location whose value or address
/// may end up in `root`.
pub fn holds(g: &EscapeGraph, root: LocId) -> Vec<LocId> {
    walk(g, root)
        .iter()
        .enumerate()
        .filter_map(|(i, d)| {
            let id = LocId(i as u32);
            (id != root && d.is_some()).then_some(id)
        })
        .collect()
}

/// Solves all escape properties on `g` to a fixpoint.
///
/// ```
/// use minigo_escape::{solve, EscapeGraph, LocKind, SolveConfig, HEAP_LOC};
/// use minigo_syntax::VarId;
///
/// // x escapes: p = &x; *q = p
/// let mut g = EscapeGraph::new();
/// let x = g.add_location(LocKind::Var(VarId(0)), "x", 0, 1, true);
/// let p = g.add_location(LocKind::Var(VarId(1)), "p", 0, 1, true);
/// g.add_edge(x, p, -1);
/// g.add_edge(p, HEAP_LOC, 0);
/// solve(&mut g, &SolveConfig::default());
/// assert!(g.loc(x).heap_alloc);
/// ```
pub fn solve(g: &mut EscapeGraph, cfg: &SolveConfig) -> SolveStats {
    let mut stats = SolveStats::default();
    // Outer fixpoint: the queue discipline of fig. 5 re-walks updated
    // locations, but a leaf update can also invalidate constraints whose
    // *root* is elsewhere (rule (c) of definition 4.12 reads leaf state from
    // the root's walk). The verification sweep catches those; property
    // lattices have constant height, so the number of passes is bounded by
    // a small constant in practice (tests pin this).
    let max_passes = g.len() + 4;
    // The first pass always seeds every root; later passes only need roots
    // whose walk cone was touched by the previous pass.
    let mut seed: Vec<LocId> = g.ids().collect();
    loop {
        stats.passes += 1;
        let mut touched = vec![false; g.len()];
        let changed = walkall_pass(g, cfg, &mut stats, &seed, &mut touched);
        if !changed {
            break;
        }
        assert!(
            stats.passes <= max_passes,
            "escape property solve failed to converge"
        );
        seed = if cfg.dirty_roots {
            let dirty = dirty_roots(g, &touched);
            stats.skipped_walks += g.len() - dirty.len();
            dirty
        } else {
            g.ids().collect()
        };
    }
    stats
}

/// Roots that must be re-walked after a pass that touched `touched`: the
/// forward closure (along src→dst edges) of every touched location, i.e.
/// exactly the roots whose walk cone contains a touched location. A root
/// outside this set re-reads the same operands as last pass, and every
/// constraint is a pure monotone function of those operands, so re-walking
/// it is a no-op.
fn dirty_roots(g: &EscapeGraph, touched: &[bool]) -> Vec<LocId> {
    let mut out: Vec<Vec<LocId>> = vec![Vec::new(); g.len()];
    for e in g.edges() {
        out[e.src.index()].push(e.dst);
    }
    let mut dirty = touched.to_vec();
    let mut queue: std::collections::VecDeque<LocId> =
        g.ids().filter(|id| touched[id.index()]).collect();
    while let Some(cur) = queue.pop_front() {
        for &next in &out[cur.index()] {
            if !dirty[next.index()] {
                dirty[next.index()] = true;
                queue.push_back(next);
            }
        }
    }
    g.ids().filter(|id| dirty[id.index()]).collect()
}

/// One work-queue pass over the `seed` roots; returns whether anything
/// changed and flags every mutated location in `touched`.
fn walkall_pass(
    g: &mut EscapeGraph,
    cfg: &SolveConfig,
    stats: &mut SolveStats,
    seed: &[LocId],
    touched: &mut [bool],
) -> bool {
    let mut any_change = false;
    let mut in_queue = vec![false; g.len()];
    for id in seed {
        in_queue[id.index()] = true;
    }
    let mut queue: std::collections::VecDeque<LocId> = seed.iter().copied().collect();
    while let Some(root) = queue.pop_front() {
        in_queue[root.index()] = false;
        stats.walks += 1;
        let dist = walk_counting(g, root, &mut stats.relaxations);
        let mut root_changed = false;
        for (i, d) in dist.iter().enumerate() {
            let leaf = LocId(i as u32);
            let Some(d) = *d else { continue };
            if leaf == root {
                continue;
            }
            let leaf_changed = apply_forward(g, root, leaf, d, cfg);
            if leaf_changed {
                any_change = true;
                touched[leaf.index()] = true;
                if !in_queue[leaf.index()] {
                    in_queue[leaf.index()] = true;
                    queue.push_back(leaf);
                }
            }
            if cfg.back_propagation && apply_backward(g, root, leaf, d, cfg) {
                any_change = true;
                root_changed = true;
            }
        }
        if root_changed {
            touched[root.index()] = true;
            if !in_queue[root.index()] {
                in_queue[root.index()] = true;
                queue.push_back(root);
            }
        }
    }
    any_change
}

/// Root→leaf constraints: `HeapAlloc` (4.10), `OutermostRef` (4.14),
/// `Exposes` propagation (4.11 clause 4), `Incomplete` from exposure (4.12
/// clause b). Returns whether the leaf changed.
fn apply_forward(g: &mut EscapeGraph, root: LocId, leaf: LocId, d: i32, cfg: &SolveConfig) -> bool {
    let (r_heap, r_loop, r_decl, r_exposes) = {
        let r = g.loc(root);
        (r.heap_alloc, r.loop_depth, r.decl_depth, r.exposes)
    };
    let m = g.loc_mut(leaf);
    let mut changed = false;
    if d == -1 {
        // leaf ∈ PointsTo(root): root may hold leaf's address.
        if !m.heap_alloc && (r_heap || r_loop < m.loop_depth) {
            m.heap_alloc = true;
            changed = true;
        }
        if r_decl < m.outermost_ref {
            m.outermost_ref = r_decl;
            changed = true;
        }
        if cfg.gofree && r_exposes && m.pointerful && !(m.incomplete && m.incomplete_internal) {
            m.incomplete = true;
            m.incomplete_internal = true;
            changed = true;
        }
    }
    if d <= 0 && cfg.gofree && r_exposes && m.pointerful && !m.exposes {
        m.exposes = true;
        changed = true;
    }
    changed
}

/// Leaf→root constraints (GoFree's fig. 5 extension): `Outlived` (4.15),
/// `PointsToHeap` (4.16), `Incomplete` from held values (4.12 clause c).
/// Returns whether the root changed.
fn apply_backward(
    g: &mut EscapeGraph,
    root: LocId,
    leaf: LocId,
    d: i32,
    cfg: &SolveConfig,
) -> bool {
    if !cfg.gofree {
        return false;
    }
    let (m_heap, m_outermost, m_incomplete, m_incomplete_internal) = {
        let m = g.loc(leaf);
        (
            m.heap_alloc,
            m.outermost_ref,
            m.incomplete,
            m.incomplete_internal,
        )
    };
    let r = g.loc_mut(root);
    let mut changed = false;
    if d == -1 {
        // leaf ∈ PointsTo(root): root is a pointer to leaf.
        if !r.outlived && m_outermost < r.decl_depth {
            r.outlived = true;
            changed = true;
        }
        if !r.points_to_heap && m_heap {
            r.points_to_heap = true;
            changed = true;
        }
    }
    // leaf ∈ Holds(root) at a value-level dereference count (d >= 0): the
    // root holds the leaf's (possibly untracked) value, so the root's own
    // points-to set is incomplete. Pure address-of flow (d == -1) is
    // excluded: the root then points *at* the leaf — fully tracked —
    // regardless of what the leaf's contents are.
    if d >= 0 && r.pointerful {
        if m_incomplete && !r.incomplete {
            r.incomplete = true;
            changed = true;
        }
        if m_incomplete_internal && !r.incomplete_internal {
            r.incomplete_internal = true;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LocKind, HEAP_LOC};
    use minigo_syntax::VarId;

    fn var(g: &mut EscapeGraph, name: &str, loop_depth: i32, decl_depth: i32) -> LocId {
        let n = g.len() as u32;
        g.add_location(LocKind::Var(VarId(n)), name, loop_depth, decl_depth, true)
    }

    /// p = &x: x -(-1)-> p. PointsTo(p) = {x}.
    #[test]
    fn points_to_via_address_edge() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        g.add_edge(x, p, -1);
        assert_eq!(points_to(&g, p), vec![x]);
        assert_eq!(points_to(&g, x), vec![]);
    }

    /// q = p; p = &x: PointsTo(q) = {x} through the copy.
    #[test]
    fn points_to_through_copies() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        let q = var(&mut g, "q", 0, 1);
        g.add_edge(x, p, -1);
        g.add_edge(p, q, 0);
        assert_eq!(points_to(&g, q), vec![x]);
    }

    /// y = *p; p = &x: y holds x's value (d=0), not x's address.
    #[test]
    fn deref_load_yields_value_not_address() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        let y = var(&mut g, "y", 0, 1);
        g.add_edge(x, p, -1);
        g.add_edge(p, y, 1);
        let dist = walk(&g, y);
        assert_eq!(dist[x.index()], Some(0));
        assert!(points_to(&g, y).is_empty());
    }

    /// Order-2 pointers: pp = &p; p = &x; d2 = **pp reaches x at d=1... and
    /// *pp yields p's value. Checks the clamp-at-zero recurrence.
    #[test]
    fn track_derefs_clamps_at_zero() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        let pp = var(&mut g, "pp", 0, 1);
        let d2 = var(&mut g, "d2", 0, 1);
        g.add_edge(x, p, -1); // p = &x
        g.add_edge(p, pp, -1); // pp = &p
        g.add_edge(pp, d2, 1); // d2 = *pp  (holds p's value == &x)
        let dist = walk(&g, d2);
        // Track pp -> d2: derefs 1. Track p -> pp -> d2: max(0,1)+(-1)=0.
        assert_eq!(dist[p.index()], Some(0));
        // Track x -> p -> pp -> d2: max(0,0)+(-1) = -1: d2 may point to x.
        assert_eq!(dist[x.index()], Some(-1));
        assert_eq!(points_to(&g, d2), vec![x]);
    }

    /// MinDerefs takes the minimum over parallel tracks (definition 4.8).
    #[test]
    fn min_derefs_over_parallel_tracks() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let a = var(&mut g, "a", 0, 1);
        let b = var(&mut g, "b", 0, 1);
        g.add_edge(x, a, 0); // a = x
        g.add_edge(x, b, -1); // b = &x
        g.add_edge(b, a, 0); // a = b
        let dist = walk(&g, a);
        assert_eq!(dist[x.index()], Some(-1), "address track wins");
    }

    /// Escaping to the heap dummy heap-allocates the pointee (def 4.10).
    #[test]
    fn heap_alloc_via_heap_dummy() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        g.add_edge(x, p, -1);
        g.add_edge(p, HEAP_LOC, 0); // *q = p style escape
        solve(&mut g, &SolveConfig::default());
        assert!(g.loc(x).heap_alloc, "x's address reached the heap");
        assert!(!g.loc(p).heap_alloc, "p itself is not pointed to");
    }

    /// Fig. 3: object allocated inside a loop, pointer declared outside —
    /// the loop-depth constraint heap-allocates it.
    #[test]
    fn heap_alloc_via_loop_depth() {
        let mut g = EscapeGraph::new();
        let outer = var(&mut g, "outer", 0, 1);
        let inner = var(&mut g, "inner", 1, 2);
        g.add_edge(inner, outer, -1); // outer = &inner (loop-carried)
        solve(&mut g, &SolveConfig::default());
        assert!(g.loc(inner).heap_alloc);
        // Same depths: no heap forcing.
        let mut g2 = EscapeGraph::new();
        let a = var(&mut g2, "a", 1, 2);
        let b = var(&mut g2, "b", 1, 2);
        g2.add_edge(a, b, -1);
        solve(&mut g2, &SolveConfig::default());
        assert!(!g2.loc(a).heap_alloc);
    }

    /// OutermostRef takes the smallest DeclDepth of any pointer (def 4.14),
    /// and a deeper pointer to such an object becomes Outlived (def 4.15).
    #[test]
    fn outermost_ref_and_outlived() {
        let mut g = EscapeGraph::new();
        let obj = var(&mut g, "obj", 0, 3);
        let inner_ptr = var(&mut g, "inner", 0, 3);
        let outer_ptr = var(&mut g, "outer", 0, 1);
        g.add_edge(obj, inner_ptr, -1);
        g.add_edge(obj, outer_ptr, -1);
        solve(&mut g, &SolveConfig::default());
        assert_eq!(g.loc(obj).outermost_ref, 1);
        assert!(
            g.loc(inner_ptr).outlived,
            "the object outlives the inner pointer's scope"
        );
        assert!(!g.loc(outer_ptr).outlived);
    }

    /// PointsToHeap (def 4.16): set iff some pointee is heap-allocated.
    #[test]
    fn points_to_heap() {
        let mut g = EscapeGraph::new();
        let obj = var(&mut g, "obj", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        g.add_edge(obj, p, -1);
        g.loc_mut(obj).heap_alloc = true;
        solve(&mut g, &SolveConfig::default());
        assert!(g.loc(p).points_to_heap);
        assert!(g.loc(p).to_free());
    }

    /// Fig. 1's completeness chain: `*ppd = pc` exposes ppd, so pd (which
    /// ppd points to) becomes Incomplete, and pd2 = *ppd (holding pd's
    /// value) becomes Incomplete by rule (c).
    #[test]
    fn exposure_marks_pointees_incomplete() {
        let mut g = EscapeGraph::new();
        let d = var(&mut g, "d", 0, 1);
        let pd = var(&mut g, "pd", 0, 1);
        let ppd = var(&mut g, "ppd", 0, 1);
        let pd2 = var(&mut g, "pd2", 0, 1);
        g.add_edge(d, pd, -1); // pd = &d
        g.add_edge(pd, ppd, -1); // ppd = &pd
        g.add_edge(ppd, pd2, 1); // pd2 = *ppd
        g.loc_mut(ppd).exposes = true; // *ppd = pc
        solve(&mut g, &SolveConfig::default());
        assert!(g.loc(pd).incomplete, "pd's value may change untracked");
        assert!(g.loc(pd2).incomplete, "pd2 holds pd's untracked value");
        assert!(!g.loc(pd2).to_free());
    }

    /// Address-of flow does NOT spread incompleteness: a pointer to an
    /// incomplete-valued object still has a complete points-to set.
    #[test]
    fn address_of_does_not_spread_incompleteness() {
        let mut g = EscapeGraph::new();
        let obj = var(&mut g, "obj", 0, 1);
        let s = var(&mut g, "s", 0, 1);
        g.add_edge(obj, s, -1); // s = &obj
        g.loc_mut(obj).incomplete = true; // obj's contents untracked
        solve(&mut g, &SolveConfig::default());
        assert!(
            !g.loc(s).incomplete,
            "s points exactly at obj; freeing s is still safe"
        );
    }

    /// Exposes propagates root→leaf along MinDerefs ≤ 0 tracks.
    #[test]
    fn exposes_propagates_to_held_values() {
        let mut g = EscapeGraph::new();
        let p = var(&mut g, "p", 0, 1);
        let q = var(&mut g, "q", 0, 1);
        g.add_edge(p, q, 0); // q = p
        g.loc_mut(q).exposes = true; // *q = ...
        solve(&mut g, &SolveConfig::default());
        assert!(g.loc(p).exposes, "p's value is q's value; q exposes it");
    }

    /// Incomplete propagates from held values to holders (rule (c)), which
    /// requires back-propagation; the ablation turns it off.
    #[test]
    fn back_propagation_ablation() {
        let mk = || {
            let mut g = EscapeGraph::new();
            let param = var(&mut g, "param", 0, 1);
            let local = var(&mut g, "local", 0, 1);
            g.add_edge(param, local, 0); // local = param
            g.loc_mut(param).incomplete = true;
            g
        };
        let mut with = mk();
        solve(&mut with, &SolveConfig::default());
        assert!(with.loc(LocId(2)).incomplete);

        let mut without = mk();
        solve(
            &mut without,
            &SolveConfig {
                gofree: true,
                back_propagation: false,
                ..SolveConfig::default()
            },
        );
        assert!(
            !without.loc(LocId(2)).incomplete,
            "without back-propagation rule (c) cannot fire"
        );
    }

    /// Non-pointerful locations never become Exposes/Incomplete (§4.2).
    #[test]
    fn scalars_skip_completeness_tracking() {
        let mut g = EscapeGraph::new();
        let n = g.add_location(LocKind::Var(VarId(9)), "n", 0, 1, false);
        let p = var(&mut g, "p", 0, 1);
        g.add_edge(p, n, 0);
        g.loc_mut(p).incomplete = true;
        solve(&mut g, &SolveConfig::default());
        assert!(!g.loc(n).incomplete);
        assert!(!g.loc(n).exposes);
    }

    /// Go-only mode computes HeapAlloc but none of the GoFree properties.
    #[test]
    fn go_only_mode() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        g.add_edge(x, p, -1);
        g.add_edge(p, HEAP_LOC, 0);
        g.loc_mut(p).exposes = true;
        solve(
            &mut g,
            &SolveConfig {
                gofree: false,
                back_propagation: false,
                ..SolveConfig::default()
            },
        );
        assert!(g.loc(x).heap_alloc);
        assert!(!g.loc(x).incomplete);
        assert!(!g.loc(p).points_to_heap);
    }

    /// Cycles (p = q; q = p) terminate and produce symmetric results.
    #[test]
    fn cycles_terminate() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        let q = var(&mut g, "q", 0, 1);
        g.add_edge(x, p, -1);
        g.add_edge(p, q, 0);
        g.add_edge(q, p, 0);
        let stats = solve(&mut g, &SolveConfig::default());
        assert_eq!(points_to(&g, p), vec![x]);
        assert_eq!(points_to(&g, q), vec![x]);
        assert!(stats.passes <= 3, "converges in few passes");
    }

    /// The solver's pass count stays small even on adversarial chains,
    /// keeping the advertised O(N²) behaviour.
    #[test]
    fn passes_stay_constant_on_long_chains() {
        let mut g = EscapeGraph::new();
        let first = var(&mut g, "v0", 0, 1);
        let mut prev = first;
        for i in 1..200 {
            let v = var(&mut g, &format!("v{i}"), 0, 1);
            g.add_edge(prev, v, 0);
            prev = v;
        }
        g.loc_mut(first).incomplete = true;
        let stats = solve(&mut g, &SolveConfig::default());
        assert!(g.loc(prev).incomplete);
        assert!(stats.passes <= 4, "got {} passes", stats.passes);
    }

    /// Dirty-root tracking must reach the exact same fixpoint as re-walking
    /// every root each pass, while doing strictly fewer walks on graphs
    /// that need multiple passes.
    #[test]
    fn dirty_roots_match_full_passes() {
        // A shape that needs several passes: incompleteness flows down a
        // chain while a side branch stays untouched (and thus skippable).
        let mk = || {
            let mut g = EscapeGraph::new();
            let mut prev = var(&mut g, "v0", 0, 1);
            let first = prev;
            for i in 1..30 {
                let v = var(&mut g, &format!("v{i}"), 0, 1);
                g.add_edge(prev, v, 0);
                prev = v;
            }
            // Disconnected diamond that converges in pass one.
            let a = var(&mut g, "a", 0, 2);
            let b = var(&mut g, "b", 0, 1);
            g.add_edge(a, b, -1);
            g.loc_mut(first).incomplete = true;
            g.loc_mut(first).exposes = true;
            (g, first)
        };
        let snapshot = |g: &EscapeGraph| {
            g.locations()
                .iter()
                .map(|l| {
                    (
                        l.heap_alloc,
                        l.exposes,
                        l.incomplete,
                        l.incomplete_internal,
                        l.outermost_ref,
                        l.outlived,
                        l.points_to_heap,
                    )
                })
                .collect::<Vec<_>>()
        };

        let (mut with, _) = mk();
        let s_with = solve(&mut with, &SolveConfig::default());
        let (mut without, _) = mk();
        let s_without = solve(
            &mut without,
            &SolveConfig {
                dirty_roots: false,
                ..SolveConfig::default()
            },
        );
        assert_eq!(snapshot(&with), snapshot(&without), "solutions diverge");
        assert_eq!(with.dump(), without.dump());
        assert!(s_with.skipped_walks > 0, "nothing was skipped");
        assert_eq!(s_without.skipped_walks, 0);
        assert!(
            s_with.walks < s_without.walks,
            "dirty tracking did not reduce walks: {} vs {}",
            s_with.walks,
            s_without.walks
        );
    }

    /// holds() includes every reachable source; points_to() only d == -1.
    #[test]
    fn holds_superset_of_points_to() {
        let mut g = EscapeGraph::new();
        let x = var(&mut g, "x", 0, 1);
        let p = var(&mut g, "p", 0, 1);
        let y = var(&mut g, "y", 0, 1);
        g.add_edge(x, p, -1);
        g.add_edge(y, p, 0);
        let h = holds(&g, p);
        assert!(h.contains(&x) && h.contains(&y));
        assert_eq!(points_to(&g, p), vec![x]);
    }
}
