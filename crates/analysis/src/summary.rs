//! Function summaries: Go's parameter tags extended with GoFree's content
//! tags (§4.4 of the paper).
//!
//! A summary is a compressed escape graph: a bipartite graph with weighted
//! edges from parameters to results (or to the heap), plus per-result
//! content-tag information describing what the result values point to —
//! whether the callee's returned allocations are heap objects worth freeing
//! (`HeapAlloc(m) = PointsToHeap(l)`) and whether their points-to sets are
//! complete (`Incomplete(l) = Incomplete(m)`).

/// Destination of a summary edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryDst {
    /// Flows into result `j`.
    Result(usize),
    /// Escapes to the heap.
    Heap,
}

/// One compressed dataflow edge: parameter `param` flows to `dst` with
/// `derefs` dereference count (taken from `MinDerefs` on the full graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryEdge {
    /// Parameter index.
    pub param: usize,
    /// Where it flows.
    pub dst: SummaryDst,
    /// Dereference count.
    pub derefs: i32,
}

/// The extended parameter tag of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSummary {
    /// Number of parameters.
    pub params: usize,
    /// Number of results.
    pub results: usize,
    /// Compressed parameter→result / parameter→heap edges.
    pub edges: Vec<SummaryEdge>,
    /// Per-result content tag: does the result point at heap allocations
    /// made by the callee (worth freeing in the caller)?
    pub result_heap: Vec<bool>,
    /// Per-result content tag: is the result's points-to set incomplete due
    /// to indirect stores *inside* the callee?
    pub result_incomplete: Vec<bool>,
    /// Per-parameter: does the callee (or its callees) store indirectly
    /// through values derived from this parameter, exposing the argument's
    /// referents to untracked modification?
    pub param_exposes: Vec<bool>,
    /// False for the conservative default tag used at unknown call sites
    /// (recursion, SCC members).
    pub known: bool,
}

impl FuncSummary {
    /// The conservative default tag (§4.4): "all parameters flow to the
    /// heap and all return values come from the heap".
    pub fn default_tag(params: usize, results: usize) -> Self {
        FuncSummary {
            params,
            results,
            edges: (0..params)
                .map(|i| SummaryEdge {
                    param: i,
                    dst: SummaryDst::Heap,
                    derefs: 0,
                })
                .collect(),
            result_heap: vec![true; results],
            result_incomplete: vec![true; results],
            param_exposes: vec![true; params],
            known: false,
        }
    }

    /// Edges flowing into result `j`.
    pub fn edges_to_result(&self, j: usize) -> impl Iterator<Item = SummaryEdge> + '_ {
        self.edges
            .iter()
            .copied()
            .filter(move |e| e.dst == SummaryDst::Result(j))
    }

    /// Edges escaping to the heap.
    pub fn heap_edges(&self) -> impl Iterator<Item = SummaryEdge> + '_ {
        self.edges
            .iter()
            .copied()
            .filter(|e| e.dst == SummaryDst::Heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tag_is_fully_conservative() {
        let tag = FuncSummary::default_tag(2, 3);
        assert!(!tag.known);
        assert_eq!(tag.heap_edges().count(), 2);
        assert!(tag.result_heap.iter().all(|&b| b));
        assert!(tag.result_incomplete.iter().all(|&b| b));
        assert!(tag.param_exposes.iter().all(|&b| b));
    }

    #[test]
    fn edge_filters() {
        let tag = FuncSummary {
            params: 2,
            results: 2,
            edges: vec![
                SummaryEdge {
                    param: 0,
                    dst: SummaryDst::Result(1),
                    derefs: 0,
                },
                SummaryEdge {
                    param: 1,
                    dst: SummaryDst::Heap,
                    derefs: 1,
                },
            ],
            result_heap: vec![true, false],
            result_incomplete: vec![false, false],
            param_exposes: vec![false, true],
            known: true,
        };
        assert_eq!(tag.edges_to_result(1).count(), 1);
        assert_eq!(tag.edges_to_result(0).count(), 0);
        assert_eq!(tag.heap_edges().count(), 1);
    }
}
