//! The whole-program analysis pipeline (fig. 4 of the paper).
//!
//! Functions are processed bottom-up over the call graph. For each function
//! we build its escape graph (embedding callee tags at call sites), solve
//! the escape properties, extract the function's extended parameter tag,
//! and record the allocation and freeing decisions.

use std::collections::HashMap;
use std::time::Instant;

use minigo_syntax::{
    ExprId, FreeKind, FuncId, Program, Resolution, Type, TypeInfo, VarId, VarKind,
};

use crate::build::{build_func_graph, BuildOptions, FuncGraph};
use crate::callgraph::CallGraph;
use crate::graph::HEAP_LOC;
use crate::solve::{points_to, solve, walk, SolveConfig, SolveStats};
use crate::summary::{FuncSummary, SummaryDst, SummaryEdge};

/// Which compiler is being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Plain Go: stack allocation only, no explicit deallocation.
    Go,
    /// GoFree: Go plus completeness/lifetime analyses and `tcfree`
    /// insertion.
    GoFree,
}

/// Which reference kinds GoFree inserts frees for. The paper's evaluation
/// (§6.5) restricts freeing to slices and maps because Go's stack
/// allocation already handles most other objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeTargets {
    /// Slices and maps only (the paper's configuration).
    SlicesAndMaps,
    /// Also free raw pointers (`new`/`&T{}` objects) — the widening
    /// ablation.
    All,
}

/// Analysis options.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Go or GoFree.
    pub mode: Mode,
    /// What to free (GoFree mode only).
    pub free_targets: FreeTargets,
    /// Fig. 5 lines 10–13; disabling is an ablation.
    pub back_propagation: bool,
    /// §4.4 content tags; disabling falls back to conservative result tags
    /// (an ablation showing cross-call frees disappear).
    pub content_tags: bool,
    /// Graph construction options.
    pub build: BuildOptions,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            mode: Mode::GoFree,
            free_targets: FreeTargets::SlicesAndMaps,
            back_propagation: true,
            content_tags: true,
            build: BuildOptions::default(),
        }
    }
}

impl AnalyzeOptions {
    /// The configuration modeling plain Go.
    pub fn go() -> Self {
        AnalyzeOptions {
            mode: Mode::Go,
            ..AnalyzeOptions::default()
        }
    }
}

/// Where an allocation site's object lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocPlace {
    /// On the current frame; popped for free.
    Stack,
    /// In the managed heap.
    Heap,
}

/// Aggregate counters for one analysis run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisStats {
    /// Total escape-graph locations across functions.
    pub locations: usize,
    /// Total escape-graph edges.
    pub edges: usize,
    /// Solver counters summed over functions.
    pub solve: SolveStats,
    /// Number of variables chosen for `tcfree`.
    pub to_free: usize,
    /// Wall-clock analysis time in nanoseconds (for §6.7).
    pub elapsed_nanos: u128,
    /// Wall-clock nanoseconds in the escape solve proper (graph build +
    /// fixpoint + summary extraction), for the compile-phase trace.
    pub solve_nanos: u128,
    /// Wall-clock nanoseconds selecting free variables — evaluating the
    /// completeness/lifetime conjuncts of definition 4.17 over the solved
    /// graphs — for the compile-phase trace.
    pub select_nanos: u128,
}

/// The result of whole-program escape analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Options the analysis ran with.
    pub options: AnalyzeOptions,
    /// Solved per-function graphs.
    pub funcs: HashMap<FuncId, FuncGraph>,
    /// Extracted extended parameter tags.
    pub summaries: HashMap<FuncId, FuncSummary>,
    /// Stack-or-heap decision per allocation expression.
    pub alloc_decisions: HashMap<ExprId, AllocPlace>,
    /// Variables to free per function, with the `tcfree` variant to use.
    pub free_vars: HashMap<FuncId, Vec<(VarId, FreeKind)>>,
    /// Counters.
    pub stats: AnalysisStats,
}

impl Analysis {
    /// The allocation decision for an expression, defaulting to heap for
    /// unknown sites (runtime-managed growth).
    pub fn place_of(&self, expr: ExprId) -> AllocPlace {
        self.alloc_decisions
            .get(&expr)
            .copied()
            .unwrap_or(AllocPlace::Heap)
    }
}

/// Runs the full analysis over `program`.
pub fn analyze(
    program: &Program,
    res: &Resolution,
    types: &TypeInfo,
    opts: &AnalyzeOptions,
) -> Analysis {
    let start = Instant::now();
    let cg = CallGraph::build(program);
    let solve_cfg = SolveConfig {
        gofree: opts.mode == Mode::GoFree,
        back_propagation: opts.back_propagation && opts.mode == Mode::GoFree,
        ..SolveConfig::default()
    };

    let mut summaries: HashMap<FuncId, FuncSummary> = HashMap::new();
    let mut funcs: HashMap<FuncId, FuncGraph> = HashMap::new();
    let mut stats = AnalysisStats::default();

    for &fid in cg.bottom_up() {
        let func = &program.funcs[fid.index()];
        let mut fg = build_func_graph(program, res, types, func, &summaries, &opts.build);
        stats.locations += fg.graph.len();
        stats.edges += fg.graph.edges().len();
        let s = solve(&mut fg.graph, &solve_cfg);
        stats.solve.walks += s.walks;
        stats.solve.relaxations += s.relaxations;
        stats.solve.passes += s.passes;
        stats.solve.skipped_walks += s.skipped_walks;
        let summary = extract_summary(program, res, &fg, opts);
        summaries.insert(fid, summary);
        funcs.insert(fid, fg);
    }
    stats.solve_nanos = start.elapsed().as_nanos();
    let select_start = Instant::now();

    let mut alloc_decisions = HashMap::new();
    let mut free_vars: HashMap<FuncId, Vec<(VarId, FreeKind)>> = HashMap::new();
    for (fid, fg) in &funcs {
        for (expr, site) in &fg.alloc_sites {
            let place = if fg.graph.loc(site.loc).heap_alloc {
                AllocPlace::Heap
            } else {
                AllocPlace::Stack
            };
            alloc_decisions.insert(*expr, place);
        }
        if opts.mode == Mode::GoFree {
            let list = select_free_vars(res, types, fg, opts);
            stats.to_free += list.len();
            free_vars.insert(*fid, list);
        }
    }
    stats.select_nanos = select_start.elapsed().as_nanos();
    stats.elapsed_nanos = start.elapsed().as_nanos();

    Analysis {
        options: opts.clone(),
        funcs,
        summaries,
        alloc_decisions,
        free_vars,
        stats,
    }
}

/// Chooses the `ToFree` variables of one function (definition 4.17 plus the
/// paper's target restriction to slices and maps).
fn select_free_vars(
    res: &Resolution,
    types: &TypeInfo,
    fg: &FuncGraph,
    opts: &AnalyzeOptions,
) -> Vec<(VarId, FreeKind)> {
    let mut out = Vec::new();
    for (&vid, &loc) in &fg.var_locs {
        if res.var(vid).kind != VarKind::Local {
            continue;
        }
        if !fg.graph.loc(loc).to_free() {
            continue;
        }
        let kind = match types.var(vid) {
            Some(Type::Slice(_)) => FreeKind::Slice,
            Some(Type::Map(_, _)) => FreeKind::Map,
            Some(Type::Ptr(_)) if opts.free_targets == FreeTargets::All => FreeKind::Pointer,
            _ => continue,
        };
        out.push((vid, kind));
    }
    out.sort_by_key(|(v, _)| *v);
    out
}

/// Extracts a function's extended parameter tag from its solved graph
/// (§4.4).
fn extract_summary(
    program: &Program,
    res: &Resolution,
    fg: &FuncGraph,
    opts: &AnalyzeOptions,
) -> FuncSummary {
    let func = &program.funcs[fg.func.index()];
    let param_locs: Vec<_> = res
        .params_of(fg.func)
        .iter()
        .map(|v| fg.loc_of(*v))
        .collect();
    let result_vars = res.results_of(fg.func);

    let mut edges = Vec::new();
    for (j, &rvar) in result_vars.iter().enumerate() {
        let dist = walk(&fg.graph, fg.loc_of(rvar));
        for (i, &ploc) in param_locs.iter().enumerate() {
            if let Some(w) = dist[ploc.index()] {
                edges.push(SummaryEdge {
                    param: i,
                    dst: SummaryDst::Result(j),
                    derefs: w,
                });
            }
        }
    }
    let heap_dist = walk(&fg.graph, HEAP_LOC);
    for (i, &ploc) in param_locs.iter().enumerate() {
        if let Some(w) = heap_dist[ploc.index()] {
            // derefs == -1 means the callee's own parameter copy escaped,
            // which is invisible to callers; only value-level escape is
            // exported.
            if w >= 0 {
                edges.push(SummaryEdge {
                    param: i,
                    dst: SummaryDst::Heap,
                    derefs: w,
                });
            }
        }
    }

    let use_content = opts.content_tags && opts.mode == Mode::GoFree;
    let mut result_heap = Vec::with_capacity(result_vars.len());
    let mut result_incomplete = Vec::with_capacity(result_vars.len());
    for (j, &rvar) in result_vars.iter().enumerate() {
        if !use_content {
            result_heap.push(true);
            result_incomplete.push(true);
            continue;
        }
        let tag = fg.result_tags[j];
        // HeapAlloc(m) = PointsToHeap(l), excluding the content tag itself
        // (its own HeapAlloc is an artifact of the r_j -> return edge).
        let heap = points_to(&fg.graph, fg.loc_of(rvar))
            .into_iter()
            .any(|p| p != tag && fg.graph.loc(p).heap_alloc);
        result_heap.push(heap);
        // Incomplete(l) = Incomplete(m): only indirect stores *within* the
        // callee count (§4.4's third export rule); the conservative
        // formal-parameter seed is excluded because the caller re-derives
        // it from its actual arguments.
        result_incomplete.push(fg.graph.loc(fg.loc_of(rvar)).incomplete_internal);
    }

    let param_exposes = if opts.mode == Mode::GoFree {
        param_locs
            .iter()
            .map(|&p| fg.graph.loc(p).exposes)
            .collect()
    } else {
        vec![true; param_locs.len()]
    };

    FuncSummary {
        params: func.params.len(),
        results: func.results.len(),
        edges,
        result_heap,
        result_incomplete,
        param_exposes,
        known: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_syntax::frontend;

    fn run(src: &str, opts: AnalyzeOptions) -> (Program, Resolution, TypeInfo, Analysis) {
        let (p, r, t) = frontend(src).expect("frontend");
        let a = analyze(&p, &r, &t, &opts);
        (p, r, t, a)
    }

    fn free_names(
        p: &Program,
        r: &Resolution,
        a: &Analysis,
        func: &str,
    ) -> Vec<(String, FreeKind)> {
        let fid = p.func(func).unwrap().id;
        a.free_vars
            .get(&fid)
            .map(|v| {
                v.iter()
                    .map(|(vid, k)| (r.var(*vid).name.clone(), *k))
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn fig3_frees_dynamic_slice_only() {
        let src = "func analyses(n int) { s1 := make([]int, 335)\n s1[0] = 1\n for i := 1; i < n; i += 1 { s2 := make([]int, i)\n s2[0] = i } }\n";
        let (p, r, _, a) = run(src, AnalyzeOptions::default());
        let frees = free_names(&p, &r, &a, "analyses");
        assert_eq!(frees, vec![("s2".to_string(), FreeKind::Slice)]);
        // s1 is stack allocated; s2's site is heap.
        let stack = a
            .alloc_decisions
            .values()
            .filter(|&&d| d == AllocPlace::Stack)
            .count();
        let heap = a
            .alloc_decisions
            .values()
            .filter(|&&d| d == AllocPlace::Heap)
            .count();
        assert_eq!((stack, heap), (1, 1));
    }

    #[test]
    fn go_mode_inserts_no_frees() {
        let src = "func f(n int) { s := make([]int, n)\n s[0] = 1 }\n";
        let (_, _, _, a) = run(src, AnalyzeOptions::go());
        assert!(a.free_vars.is_empty());
        assert_eq!(a.stats.to_free, 0);
        // But allocation decisions still exist.
        assert_eq!(a.alloc_decisions.len(), 1);
    }

    #[test]
    fn fig7_content_tags_enable_cross_call_free() {
        let src = r#"
func partialNew(ps *[]int) (r0 []int, r1 []int) {
    pps := &ps
    *pps = ps
    made := make([]int, 3)
    made[0] = 1
    return made, **pps
}

func caller(n int) {
    s := make([]int, n)
    fresh, old := partialNew(&s)
    fresh[0] = old[0]
}
"#;
        let (p, r, _, a) = run(src, AnalyzeOptions::default());
        let frees = free_names(&p, &r, &a, "caller");
        let names: Vec<_> = frees.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"fresh"),
            "content tag propagates the callee's make to fresh; got {names:?}"
        );
        assert!(
            !names.contains(&"old"),
            "old's tag is incomplete (indirect store in callee); got {names:?}"
        );
        // `made` must not be freed inside the callee: it escapes by return.
        let callee_frees = free_names(&p, &r, &a, "partialNew");
        assert!(callee_frees.is_empty(), "got {callee_frees:?}");
    }

    #[test]
    fn content_tag_ablation_blocks_cross_call_free() {
        let src = r#"
func mk() []int {
    made := make([]int, 3)
    made[0] = 1
    return made
}

func caller() {
    fresh := mk()
    fresh[0] = 2
}
"#;
        let with = run(src, AnalyzeOptions::default());
        let names: Vec<_> = free_names(&with.0, &with.1, &with.3, "caller");
        assert!(names.iter().any(|(n, _)| n == "fresh"));

        let without = run(
            src,
            AnalyzeOptions {
                content_tags: false,
                ..AnalyzeOptions::default()
            },
        );
        let names: Vec<_> = free_names(&without.0, &without.1, &without.3, "caller");
        assert!(
            names.is_empty(),
            "without content tags the caller cannot free; got {names:?}"
        );
    }

    #[test]
    fn summary_records_param_passthrough() {
        let src = "func id(s []int) []int { return s }\nfunc main() { }\n";
        let (p, _, _, a) = run(src, AnalyzeOptions::default());
        let fid = p.func("id").unwrap().id;
        let tag = &a.summaries[&fid];
        assert!(tag.known);
        assert!(tag
            .edges_to_result(0)
            .any(|e| e.param == 0 && e.derefs == 0));
        assert!(!tag.result_incomplete[0]);
        assert!(
            !tag.result_heap[0],
            "id allocates nothing; freeing is the caller's knowledge"
        );
    }

    #[test]
    fn summary_records_heap_escape() {
        let src = "func leak(p *int, sink *[]*int) { *sink = append(*sink, p) }\nfunc main() { }\n";
        let (p, _, _, a) = run(src, AnalyzeOptions::default());
        let fid = p.func("leak").unwrap().id;
        let tag = &a.summaries[&fid];
        assert!(
            tag.heap_edges().any(|e| e.param == 0),
            "p escapes into the sink: {:?}",
            tag.edges
        );
    }

    #[test]
    fn caller_of_escaping_callee_cannot_free() {
        let src = r#"
func keep(s []int, sink *[][]int) {
    *sink = append(*sink, s)
}

func caller(n int, sink *[][]int) {
    s := make([]int, n)
    keep(s, sink)
}
"#;
        let (p, r, _, a) = run(src, AnalyzeOptions::default());
        let frees = free_names(&p, &r, &a, "caller");
        assert!(frees.is_empty(), "s escapes through keep; got {frees:?}");
    }

    #[test]
    fn factory_with_multiple_results_mixed() {
        // One result fresh, one passthrough of caller memory (§4.6.3).
        let src = r#"
func factory(s []int) ([]int, []int) {
    fresh := make([]int, 4)
    fresh[0] = 1
    return fresh, s
}

func outer(n int) {
    base := make([]int, n)
    {
        a, b := factory(base)
        a[0] = b[0]
    }
    base[0] = 9
}
"#;
        let (p, r, _, a) = run(src, AnalyzeOptions::default());
        let frees = free_names(&p, &r, &a, "outer");
        let names: Vec<_> = frees.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"a"), "fresh result freeable: {names:?}");
        assert!(
            !names.contains(&"b"),
            "b aliases base which outlives the inner scope: {names:?}"
        );
    }

    #[test]
    fn recursion_is_conservative() {
        let src = r#"
func rec(n int) []int {
    if n == 0 {
        return make([]int, 1)
    }
    s := rec(n - 1)
    return s
}
func main() { s := rec(3)\n s[0] = 1 }
"#;
        let src = src.replace("\\n", "\n");
        let (p, r, _, a) = run(&src, AnalyzeOptions::default());
        assert!(free_names(&p, &r, &a, "rec").is_empty());
    }

    #[test]
    fn maps_freed_and_pointer_targets_gated() {
        // mkp's pointer is heap-allocated (escapes by return); the caller
        // can free it — but only when FreeTargets::All widens the target
        // set beyond the paper's slices-and-maps default (§6.5).
        let src = r#"
func mkp(n int) *int {
    p := new(int)
    *p = n
    return p
}

func f(n int) {
    m := make(map[int]int)
    for i := 0; i < n; i += 1 {
        m[i] = i
    }
    q := mkp(n)
    m[0] = *q
}
"#;
        let (p, r, _, a) = run(src, AnalyzeOptions::default());
        let frees = free_names(&p, &r, &a, "f");
        assert_eq!(frees, vec![("m".to_string(), FreeKind::Map)]);

        let (p2, r2, _, a2) = run(
            src,
            AnalyzeOptions {
                free_targets: FreeTargets::All,
                ..AnalyzeOptions::default()
            },
        );
        let frees2 = free_names(&p2, &r2, &a2, "f");
        assert!(
            frees2
                .iter()
                .any(|(n, k)| n == "q" && *k == FreeKind::Pointer),
            "got {frees2:?}"
        );
    }

    #[test]
    fn stats_are_populated() {
        let (_, _, _, a) = run(
            "func f(n int) { s := make([]int, n)\n s[0] = 1 }\n",
            AnalyzeOptions::default(),
        );
        assert!(a.stats.locations > 0);
        assert!(a.stats.edges > 0);
        assert!(a.stats.solve.walks > 0);
        assert_eq!(a.stats.to_free, 1);
    }
}
