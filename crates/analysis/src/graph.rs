//! The escape graph (definitions 4.1–4.5 of the paper).
//!
//! A directed weighted graph whose vertices ("locations") represent storage
//! and whose edges represent data flow. Edge weights are dereference counts
//! (`Derefs`, definition 4.5): `-1` for address-of flow, `0` for value flow,
//! `+1` for a load through a pointer (table 2).

use std::fmt;

use minigo_syntax::{ExprId, FreeKind, VarId};

/// Identifies a location (vertex) within one function's escape graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocId(pub u32);

impl LocId {
    /// The id as a plain index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// What a location stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocKind {
    /// The global dummy heap location (`heapLoc` in the paper).
    HeapDummy,
    /// The per-function dummy return location.
    ReturnDummy,
    /// A named variable (parameter, result, or local).
    Var(VarId),
    /// An allocation site: the storage created by `make`, `new`, `&T{..}`.
    Alloc(ExprId, AllocKind),
    /// A dummy content location summarizing runtime-managed allocation:
    /// slice append growth, map bucket growth, or a callee's returned
    /// allocations (the content tags of §4.4).
    Content(ContentOrigin),
    /// A synthesized temporary holding an intermediate value (call
    /// arguments, complex lvalue bases).
    Temp(ExprId),
}

/// What kind of object an allocation site creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// The backing array of `make([]T, ..)`.
    SliceArray,
    /// The hmap + initial buckets of `make(map[K]V)`.
    MapBuckets,
    /// The object of `new(T)` or `&T{..}`.
    Object,
}

impl AllocKind {
    /// The `tcfree` variant that frees objects of this kind.
    pub fn free_kind(self) -> FreeKind {
        match self {
            AllocKind::SliceArray => FreeKind::Slice,
            AllocKind::MapBuckets => FreeKind::Map,
            AllocKind::Object => FreeKind::Pointer,
        }
    }
}

/// Where a content dummy location came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentOrigin {
    /// Possible implicit allocation by `append` (§4.6.1).
    SliceAppend(ExprId),
    /// Possible bucket growth at a map store (§4.6.2); carries the id of
    /// the indexing expression.
    MapGrowth(ExprId),
    /// Content tag of result `index` at a call site (§4.4).
    CallResult(ExprId, usize),
}

/// A directed weighted edge (definition 4.4/4.5). `src`'s value, address, or
/// dereference flows into `dst`, with `derefs` counting the dereference
/// offset (table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source location.
    pub src: LocId,
    /// Destination location.
    pub dst: LocId,
    /// Dereference count: -1 address-of, 0 value, +1 load.
    pub derefs: i32,
}

/// Per-location solved properties (table 1) plus bookkeeping flags.
#[derive(Debug, Clone)]
pub struct Location {
    /// What this location stands for.
    pub kind: LocKind,
    /// A printable name for debugging and experiment output.
    pub name: String,
    /// `LoopDepth` (definition 4.3). Dummies use -1.
    pub loop_depth: i32,
    /// `DeclDepth` (definition 4.13). Dummies use -1.
    pub decl_depth: i32,
    /// Whether the location's type can reach pointers; `Exposes` and
    /// `Incomplete` are only tracked for pointerful locations (§4.2).
    pub pointerful: bool,

    // ---- solved properties (table 1) ----
    /// `HeapAlloc` (definition 4.10).
    pub heap_alloc: bool,
    /// `Exposes` (definition 4.11).
    pub exposes: bool,
    /// `Incomplete` (definition 4.12).
    pub incomplete: bool,
    /// The part of `Incomplete` that originates from indirect stores (rule
    /// b via `Exposes`), *excluding* the conservative formal-parameter seed
    /// (rule a). This is what a function's extended parameter tag exports
    /// as the content tag's incompleteness (§4.4's third rule): the
    /// caller re-derives parameter-related incompleteness from its own
    /// arguments, but indirect stores inside the callee "must be recorded
    /// for safety".
    pub incomplete_internal: bool,
    /// `OutermostRef` (definition 4.14). Starts at `decl_depth` and only
    /// decreases.
    pub outermost_ref: i32,
    /// `Outlived` (definition 4.15).
    pub outlived: bool,
    /// `PointsToHeap` (definition 4.16).
    pub points_to_heap: bool,

    /// Banned from freeing: passed to `defer`/`panic` (§5) or otherwise
    /// excluded.
    pub pinned: bool,
}

impl Location {
    /// `ToFree` (definition 4.17): qualified for explicit deallocation.
    pub fn to_free(&self) -> bool {
        !self.incomplete && !self.outlived && self.points_to_heap && !self.pinned
    }
}

/// One function's escape graph: locations, edges, and adjacency.
#[derive(Debug, Clone, Default)]
pub struct EscapeGraph {
    locs: Vec<Location>,
    edges: Vec<Edge>,
    /// Incoming edge indices per location (the solver walks reverse edges).
    incoming: Vec<Vec<u32>>,
}

/// The conventional id of the `heapLoc` dummy: always the first location.
pub const HEAP_LOC: LocId = LocId(0);

impl EscapeGraph {
    /// Creates a graph containing only the `heapLoc` dummy.
    pub fn new() -> Self {
        let mut g = EscapeGraph::default();
        let heap = g.add_location(LocKind::HeapDummy, "heapLoc", -1, -1, true);
        debug_assert_eq!(heap, HEAP_LOC);
        g.locs[heap.index()].heap_alloc = true;
        // Exposes(heapLoc) = true (definition 4.11): anything escaping into
        // the heap may be stored through elsewhere.
        g.locs[heap.index()].exposes = true;
        g
    }

    /// Adds a location and returns its id.
    pub fn add_location(
        &mut self,
        kind: LocKind,
        name: impl Into<String>,
        loop_depth: i32,
        decl_depth: i32,
        pointerful: bool,
    ) -> LocId {
        let id = LocId(self.locs.len() as u32);
        self.locs.push(Location {
            kind,
            name: name.into(),
            loop_depth,
            decl_depth,
            pointerful,
            heap_alloc: false,
            exposes: false,
            incomplete: false,
            incomplete_internal: false,
            outermost_ref: decl_depth,
            outlived: false,
            points_to_heap: false,
            pinned: false,
        });
        self.incoming.push(Vec::new());
        id
    }

    /// Adds edge `src --derefs--> dst`. Self-edges with weight 0 are
    /// meaningless and dropped.
    pub fn add_edge(&mut self, src: LocId, dst: LocId, derefs: i32) {
        if src == dst && derefs == 0 {
            return;
        }
        debug_assert!(derefs >= -1, "Derefs(e) >= -1 always holds");
        let idx = self.edges.len() as u32;
        self.edges.push(Edge { src, dst, derefs });
        self.incoming[dst.index()].push(idx);
    }

    /// The location for an id.
    pub fn loc(&self, id: LocId) -> &Location {
        &self.locs[id.index()]
    }

    /// Mutable access to a location.
    pub fn loc_mut(&mut self, id: LocId) -> &mut Location {
        &mut self.locs[id.index()]
    }

    /// All locations, indexable by [`LocId::index`].
    pub fn locations(&self) -> &[Location] {
        &self.locs
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Whether the graph has only the heap dummy.
    pub fn is_empty(&self) -> bool {
        self.locs.len() <= 1
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Incoming edges of `dst` (for reverse walks).
    pub fn incoming(&self, dst: LocId) -> impl Iterator<Item = Edge> + '_ {
        self.incoming[dst.index()]
            .iter()
            .map(|&i| self.edges[i as usize])
    }

    /// Iterates all location ids.
    pub fn ids(&self) -> impl Iterator<Item = LocId> {
        (0..self.locs.len() as u32).map(LocId)
    }

    /// Finds the location of a variable, if present.
    pub fn var_loc(&self, var: VarId) -> Option<LocId> {
        self.ids()
            .find(|id| matches!(self.loc(*id).kind, LocKind::Var(v) if v == var))
    }

    /// Renders the escape graph as Graphviz DOT, coloring heap-allocated
    /// locations green and stack locations blue like the paper's fig. 1.
    /// Dummy locations are drawn as diamonds; edges are labeled with their
    /// `Derefs` weight.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [fontname=\"monospace\"];");
        for id in self.ids() {
            let l = self.loc(id);
            let shape = match l.kind {
                LocKind::HeapDummy | LocKind::ReturnDummy => "diamond",
                LocKind::Content(_) => "ellipse",
                _ => "box",
            };
            let color = if l.heap_alloc {
                "palegreen"
            } else {
                "lightblue"
            };
            let mut flags = String::new();
            if l.exposes {
                flags.push_str("\\nExposes");
            }
            if l.incomplete {
                flags.push_str("\\nIncomplete");
            }
            if l.outlived {
                flags.push_str("\\nOutlived");
            }
            if l.to_free() && !matches!(l.kind, LocKind::HeapDummy | LocKind::ReturnDummy) {
                flags.push_str("\\nToFree");
            }
            let _ = writeln!(
                out,
                "  n{} [label=\"{}{}\" shape={} style=filled fillcolor={}];",
                id.0, l.name, flags, shape, color
            );
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"];",
                e.src.0, e.dst.0, e.derefs
            );
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph in a stable, human-readable form (tests and the
    /// table 3 experiment use this).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for id in self.ids() {
            let l = self.loc(id);
            let _ = writeln!(
                out,
                "{id} {} ld={} dd={}{}{}{}{}{}{}",
                l.name,
                l.loop_depth,
                l.decl_depth,
                if l.heap_alloc { " heap" } else { "" },
                if l.exposes { " exposes" } else { "" },
                if l.incomplete { " incomplete" } else { "" },
                if l.outlived { " outlived" } else { "" },
                if l.points_to_heap { " ptsheap" } else { "" },
                if l.pinned { " pinned" } else { "" },
            );
        }
        for e in &self.edges {
            let _ = writeln!(out, "{} -{}-> {}", e.src, e.derefs, e.dst);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_dummy_is_first_and_marked() {
        let g = EscapeGraph::new();
        assert_eq!(g.len(), 1);
        assert!(g.loc(HEAP_LOC).heap_alloc);
        assert!(g.loc(HEAP_LOC).exposes);
        assert_eq!(g.loc(HEAP_LOC).decl_depth, -1);
    }

    #[test]
    fn edges_index_incoming() {
        let mut g = EscapeGraph::new();
        let a = g.add_location(LocKind::Var(VarId(0)), "a", 0, 1, true);
        let b = g.add_location(LocKind::Var(VarId(1)), "b", 0, 1, true);
        g.add_edge(a, b, -1);
        g.add_edge(HEAP_LOC, b, 0);
        let incoming: Vec<_> = g.incoming(b).collect();
        assert_eq!(incoming.len(), 2);
        assert_eq!(incoming[0].src, a);
        assert_eq!(incoming[0].derefs, -1);
    }

    #[test]
    fn zero_weight_self_edges_dropped() {
        let mut g = EscapeGraph::new();
        let a = g.add_location(LocKind::Var(VarId(0)), "a", 0, 1, true);
        g.add_edge(a, a, 0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn to_free_requires_all_three_conditions() {
        let mut g = EscapeGraph::new();
        let a = g.add_location(LocKind::Var(VarId(0)), "a", 0, 1, true);
        assert!(!g.loc(a).to_free(), "needs PointsToHeap");
        g.loc_mut(a).points_to_heap = true;
        assert!(g.loc(a).to_free());
        g.loc_mut(a).incomplete = true;
        assert!(!g.loc(a).to_free());
        g.loc_mut(a).incomplete = false;
        g.loc_mut(a).outlived = true;
        assert!(!g.loc(a).to_free());
        g.loc_mut(a).outlived = false;
        g.loc_mut(a).pinned = true;
        assert!(!g.loc(a).to_free());
    }

    #[test]
    fn alloc_kind_maps_to_free_kind() {
        assert_eq!(AllocKind::SliceArray.free_kind(), FreeKind::Slice);
        assert_eq!(AllocKind::MapBuckets.free_kind(), FreeKind::Map);
        assert_eq!(AllocKind::Object.free_kind(), FreeKind::Pointer);
    }

    #[test]
    fn var_loc_lookup() {
        let mut g = EscapeGraph::new();
        let a = g.add_location(LocKind::Var(VarId(7)), "a", 0, 1, true);
        assert_eq!(g.var_loc(VarId(7)), Some(a));
        assert_eq!(g.var_loc(VarId(8)), None);
    }

    #[test]
    fn dump_contains_names_and_edges() {
        let mut g = EscapeGraph::new();
        let a = g.add_location(LocKind::Var(VarId(0)), "alpha", 0, 1, true);
        g.add_edge(a, HEAP_LOC, 0);
        let d = g.dump();
        assert!(d.contains("alpha"));
        assert!(d.contains("-0-> L0"));
    }
}
