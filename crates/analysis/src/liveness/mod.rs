//! Liveness-driven free placement.
//!
//! The §4.5 instrumentation frees at scope exit; the PR 5 profiler
//! measures how much lifetime drag that leaves on the table (alloc→free
//! vs alloc→last-use). This module closes part of that gap with a
//! backward last-use analysis over the declaring scope:
//!
//! * **Last-use advancement** ([`plan_placement`]): a `ToFree` variable's
//!   `tcfree` moves from the scope end to the statement after the last
//!   statement that can touch its referent. "Touch" is computed over the
//!   variable's *alias group* — every variable whose solved points-to set
//!   intersects its own — and refined context-sensitively by
//!   [`UseSummary`]: a bare argument handed to a callee position the
//!   callee provably never uses does not extend the live range.
//! * **Partial frees** ([`partial`]): struct locals the §6.5 target
//!   restriction abandons get `tcfree(x.f)` for slice/map fields whose
//!   backing store provably has no alias besides `x.f`.
//!
//! Placement is planned *before* instrumentation and handed to
//! [`instrument_with_plan`](crate::instrument::instrument_with_plan);
//! [`FreePlacement::Scope`] plans nothing and reproduces today's output
//! bit-exactly. Every planned site is subsequently re-proved by the
//! independent auditor (`--audit deny` strips anything unproven), so a
//! planner bug degrades placement, never safety.

use std::collections::{BTreeSet, HashMap};

use minigo_syntax::{
    Block, Expr, ExprKind, FreeKind, Func, FuncId, Program, Resolution, Stmt, StmtId, StmtKind,
    Type, TypeInfo, VarId, VarKind,
};

use crate::analyze::Analysis;
use crate::callgraph::CallGraph;
use crate::solve::points_to;

mod partial;
pub mod summary;

pub use summary::{use_summaries, UseSummary};

/// Where the instrumentation places each inserted `tcfree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreePlacement {
    /// Scope-exit placement (§4.5 of the paper); the historical default.
    #[default]
    Scope,
    /// Liveness-driven placement: free after the last use, plus partial
    /// frees for abandoned struct fields.
    LastUse,
}

impl FreePlacement {
    /// Parses a CLI value (`scope` / `lastuse`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scope" => Some(FreePlacement::Scope),
            "lastuse" | "last-use" => Some(FreePlacement::LastUse),
            _ => None,
        }
    }

    /// Canonical CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            FreePlacement::Scope => "scope",
            FreePlacement::LastUse => "lastuse",
        }
    }
}

/// Placement outcome counters, surfaced in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementStats {
    /// Placement mode the program was compiled under.
    pub mode: FreePlacement,
    /// Whole-variable frees moved earlier than their scope-exit slot.
    pub lastuse_advanced: u64,
    /// `tcfree(x.f)` partial frees emitted for abandoned struct locals.
    pub partial_frees: u64,
    /// Planned placements the auditor could not prove (stripped under
    /// `--audit deny`, kept-but-flagged under `warn`).
    pub suppressed: u64,
}

/// One planned partial free: `tcfree(base.field)` after statement `after`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialFree {
    /// The struct-typed (or pointer-to-struct) local being partially freed.
    pub base: VarId,
    /// Field name.
    pub field: String,
    /// The field's type (recorded on the synthesized expression so both
    /// engines can resolve the field offset).
    pub field_ty: Type,
    /// `tcfree` variant for the field.
    pub kind: FreeKind,
    /// Statement id the free is inserted after.
    pub after: StmtId,
}

/// The full placement plan for a program, consumed by
/// [`instrument_with_plan`](crate::instrument::instrument_with_plan).
#[derive(Debug, Clone, Default)]
pub struct PlacementPlan {
    /// Per function: whole-variable frees to insert after a specific
    /// statement instead of at scope exit.
    pub advance: HashMap<FuncId, Vec<(VarId, FreeKind, StmtId)>>,
    /// Per function: partial frees for abandoned struct locals.
    pub partials: HashMap<FuncId, Vec<PartialFree>>,
    /// Planned counts (suppressed is filled in by the pipeline after the
    /// audit pass).
    pub stats: PlacementStats,
}

/// Plans liveness-driven placement for an analyzed (not yet
/// instrumented) program. Only meaningful under
/// [`FreePlacement::LastUse`]; `Scope` compilations never build a plan.
pub fn plan_placement(
    program: &Program,
    res: &Resolution,
    types: &TypeInfo,
    analysis: &Analysis,
) -> PlacementPlan {
    let cg = CallGraph::build(program);
    let sums = use_summaries(program, res, &cg);
    let by_name: HashMap<&str, FuncId> = program
        .funcs
        .iter()
        .map(|f| (f.name.as_str(), f.id))
        .collect();
    let mut plan = PlacementPlan {
        stats: PlacementStats {
            mode: FreePlacement::LastUse,
            ..Default::default()
        },
        ..Default::default()
    };
    for func in &program.funcs {
        let Some(fg) = analysis.funcs.get(&func.id) else {
            continue;
        };
        let frees = analysis
            .free_vars
            .get(&func.id)
            .cloned()
            .unwrap_or_default();
        let advances = plan_advances(func, res, fg, &frees, &by_name, &sums);
        let mut partials = partial::plan_partials(func, res, types, fg, &frees);
        // Never park a free behind a terminator: it would not execute.
        let terms = terminator_stmts(&func.body);
        partials.retain(|p| !terms.contains(&p.after));
        plan.stats.lastuse_advanced += advances.len() as u64;
        plan.stats.partial_frees += partials.len() as u64;
        if !advances.is_empty() {
            plan.advance.insert(func.id, advances);
        }
        if !partials.is_empty() {
            plan.partials.insert(func.id, partials);
        }
    }
    plan
}

/// Plans last-use advancement for one function's `ToFree` variables.
fn plan_advances(
    func: &Func,
    res: &Resolution,
    fg: &crate::build::FuncGraph,
    frees: &[(VarId, FreeKind)],
    by_name: &HashMap<&str, FuncId>,
    sums: &HashMap<FuncId, UseSummary>,
) -> Vec<(VarId, FreeKind, StmtId)> {
    let mut out = Vec::new();
    if frees.is_empty() {
        return out;
    }
    // Solved points-to sets for every variable in the function.
    let pts: HashMap<VarId, BTreeSet<crate::graph::LocId>> = fg
        .var_locs
        .iter()
        .map(|(v, loc)| (*v, points_to(&fg.graph, *loc).into_iter().collect()))
        .collect();
    for &(v, kind) in frees {
        let Some(vp) = pts.get(&v) else { continue };
        // Alias group: anything whose referents intersect v's. A use of
        // any member may touch v's object, so all of them pin liveness.
        let group: Vec<VarId> = pts
            .iter()
            .filter(|(_, wp)| !vp.is_disjoint(wp))
            .map(|(w, _)| *w)
            .collect();
        // A non-local alias (parameter or named result) can carry the
        // object across the call boundary; leave the scope placement.
        if group.iter().any(|w| res.var(*w).kind != VarKind::Local) {
            continue;
        }
        // Deferred calls run at function exit; if one can mention the
        // group, the referent must survive until then.
        if defer_mentions(&func.body, res, &group) {
            continue;
        }
        let Some(decl) = res.decl_stmt_of(v) else {
            continue;
        };
        // For-init declarations have no top-level slot; their free stays
        // on the after-the-loop scope path.
        let Some(stmts) = block_of_stmt(&func.body, decl) else {
            continue;
        };
        let decl_idx = stmts.iter().position(|s| s.id == decl).unwrap();
        let mut last = decl_idx;
        for (i, stmt) in stmts.iter().enumerate().skip(decl_idx + 1) {
            if stmt_uses_group(stmt, res, &group, by_name, sums) {
                last = i;
            }
        }
        let last_index = stmts.len() - 1;
        if is_terminator(&stmts[last]) {
            continue; // the last use is on the terminator itself
        }
        // The scope path already places the free at the block end (or
        // just before a trailing terminator); only a strictly earlier
        // slot is an advancement.
        let scope_idx = if is_terminator(&stmts[last_index]) {
            last_index.saturating_sub(1)
        } else {
            last_index
        };
        if last < scope_idx {
            out.push((v, kind, stmts[last].id));
        }
    }
    out.sort_by_key(|(v, _, s)| (*v, *s));
    out
}

fn is_terminator(stmt: &Stmt) -> bool {
    matches!(
        stmt.kind,
        StmtKind::Return { .. } | StmtKind::Break | StmtKind::Continue
    )
}

/// Whether a statement's subtree can touch the referent of any variable
/// in `group`, with the context-sensitive dead-argument refinement.
fn stmt_uses_group(
    stmt: &Stmt,
    res: &Resolution,
    group: &[VarId],
    by_name: &HashMap<&str, FuncId>,
    sums: &HashMap<FuncId, UseSummary>,
) -> bool {
    fn expr_uses(
        e: &Expr,
        res: &Resolution,
        group: &[VarId],
        by_name: &HashMap<&str, FuncId>,
        sums: &HashMap<FuncId, UseSummary>,
    ) -> bool {
        match &e.kind {
            ExprKind::Ident(_) => res
                .def_of(e.id)
                .map(|v| group.contains(&v))
                .unwrap_or(false),
            ExprKind::Unary { operand, .. } => expr_uses(operand, res, group, by_name, sums),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr_uses(lhs, res, group, by_name, sums)
                    || expr_uses(rhs, res, group, by_name, sums)
            }
            ExprKind::Field { base, .. } => expr_uses(base, res, group, by_name, sums),
            ExprKind::Index { base, index } => {
                expr_uses(base, res, group, by_name, sums)
                    || expr_uses(index, res, group, by_name, sums)
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                expr_uses(base, res, group, by_name, sums)
                    || [lo, hi]
                        .into_iter()
                        .flatten()
                        .any(|b| expr_uses(b, res, group, by_name, sums))
            }
            ExprKind::Call { callee, args } => args.iter().enumerate().any(|(i, a)| {
                !summary::arg_is_dead(a, i, callee, by_name, sums)
                    && expr_uses(a, res, group, by_name, sums)
            }),
            ExprKind::Builtin { args, .. } => {
                args.iter().any(|a| expr_uses(a, res, group, by_name, sums))
            }
            ExprKind::StructLit { fields, .. } => fields
                .iter()
                .any(|f| expr_uses(f, res, group, by_name, sums)),
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Nil => {
                false
            }
        }
    }
    fn block_uses(
        b: &Block,
        res: &Resolution,
        group: &[VarId],
        by_name: &HashMap<&str, FuncId>,
        sums: &HashMap<FuncId, UseSummary>,
    ) -> bool {
        b.stmts
            .iter()
            .any(|s| stmt_uses_group(s, res, group, by_name, sums))
    }
    match &stmt.kind {
        StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => {
            init.iter().any(|e| expr_uses(e, res, group, by_name, sums))
        }
        StmtKind::Assign { lhs, rhs, .. } => lhs
            .iter()
            .chain(rhs)
            .any(|e| expr_uses(e, res, group, by_name, sums)),
        StmtKind::If { cond, then, els } => {
            expr_uses(cond, res, group, by_name, sums)
                || block_uses(then, res, group, by_name, sums)
                || els
                    .as_ref()
                    .is_some_and(|e| stmt_uses_group(e, res, group, by_name, sums))
        }
        StmtKind::For {
            init,
            cond,
            post,
            body,
        } => {
            init.as_ref()
                .is_some_and(|i| stmt_uses_group(i, res, group, by_name, sums))
                || cond
                    .as_ref()
                    .is_some_and(|c| expr_uses(c, res, group, by_name, sums))
                || post
                    .as_ref()
                    .is_some_and(|p| stmt_uses_group(p, res, group, by_name, sums))
                || block_uses(body, res, group, by_name, sums)
        }
        StmtKind::Return { exprs } => exprs
            .iter()
            .any(|e| expr_uses(e, res, group, by_name, sums)),
        StmtKind::Expr { expr } => expr_uses(expr, res, group, by_name, sums),
        StmtKind::BlockStmt { block } => block_uses(block, res, group, by_name, sums),
        StmtKind::Defer { call } => expr_uses(call, res, group, by_name, sums),
        StmtKind::Switch {
            subject,
            cases,
            default,
        } => {
            expr_uses(subject, res, group, by_name, sums)
                || cases.iter().any(|c| {
                    c.values
                        .iter()
                        .any(|v| expr_uses(v, res, group, by_name, sums))
                        || block_uses(&c.body, res, group, by_name, sums)
                })
                || default
                    .as_ref()
                    .is_some_and(|d| block_uses(d, res, group, by_name, sums))
        }
        StmtKind::Free { target, .. } => expr_uses(target, res, group, by_name, sums),
        StmtKind::Break | StmtKind::Continue => false,
    }
}

/// Whether any `defer` in the function mentions a group member. Deferred
/// argument *values* are captured at defer time, but the paper's model
/// keeps referents alive until the call runs, so we stay conservative.
fn defer_mentions(body: &Block, res: &Resolution, group: &[VarId]) -> bool {
    fn walk(b: &Block, res: &Resolution, group: &[VarId]) -> bool {
        b.stmts.iter().any(|s| stmt_defers(s, res, group))
    }
    fn stmt_defers(s: &Stmt, res: &Resolution, group: &[VarId]) -> bool {
        match &s.kind {
            StmtKind::Defer { call } => mentions(call, res, group),
            StmtKind::If { then, els, .. } => {
                walk(then, res, group) || els.as_ref().is_some_and(|e| stmt_defers(e, res, group))
            }
            StmtKind::For { body, .. } => walk(body, res, group),
            StmtKind::BlockStmt { block } => walk(block, res, group),
            StmtKind::Switch { cases, default, .. } => {
                cases.iter().any(|c| walk(&c.body, res, group))
                    || default.as_ref().is_some_and(|d| walk(d, res, group))
            }
            _ => false,
        }
    }
    fn mentions(e: &Expr, res: &Resolution, group: &[VarId]) -> bool {
        match &e.kind {
            ExprKind::Ident(_) => res
                .def_of(e.id)
                .map(|v| group.contains(&v))
                .unwrap_or(false),
            ExprKind::Unary { operand, .. } => mentions(operand, res, group),
            ExprKind::Binary { lhs, rhs, .. } => {
                mentions(lhs, res, group) || mentions(rhs, res, group)
            }
            ExprKind::Field { base, .. } => mentions(base, res, group),
            ExprKind::Index { base, index } => {
                mentions(base, res, group) || mentions(index, res, group)
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                mentions(base, res, group)
                    || [lo, hi]
                        .into_iter()
                        .flatten()
                        .any(|b| mentions(b, res, group))
            }
            ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } => {
                args.iter().any(|a| mentions(a, res, group))
            }
            ExprKind::StructLit { fields, .. } => fields.iter().any(|f| mentions(f, res, group)),
            _ => false,
        }
    }
    walk(body, res, group)
}

/// Finds the statement list of the block containing `sid` at top level.
fn block_of_stmt(body: &Block, sid: StmtId) -> Option<&[Stmt]> {
    fn walk(b: &Block, sid: StmtId) -> Option<&[Stmt]> {
        if b.stmts.iter().any(|s| s.id == sid) {
            return Some(&b.stmts);
        }
        for s in &b.stmts {
            let found = match &s.kind {
                StmtKind::If { then, els, .. } => {
                    walk(then, sid).or_else(|| els.as_ref().and_then(|e| stmt_walk(e, sid)))
                }
                StmtKind::For { body, .. } => walk(body, sid),
                StmtKind::BlockStmt { block } => walk(block, sid),
                StmtKind::Switch { cases, default, .. } => cases
                    .iter()
                    .find_map(|c| walk(&c.body, sid))
                    .or_else(|| default.as_ref().and_then(|d| walk(d, sid))),
                _ => None,
            };
            if found.is_some() {
                return found;
            }
        }
        None
    }
    fn stmt_walk(s: &Stmt, sid: StmtId) -> Option<&[Stmt]> {
        match &s.kind {
            StmtKind::BlockStmt { block } => walk(block, sid),
            StmtKind::If { then, els, .. } => {
                walk(then, sid).or_else(|| els.as_ref().and_then(|e| stmt_walk(e, sid)))
            }
            _ => None,
        }
    }
    walk(body, sid)
}

/// Collects every terminator statement id in a function body.
fn terminator_stmts(body: &Block) -> BTreeSet<StmtId> {
    fn walk(b: &Block, out: &mut BTreeSet<StmtId>) {
        for s in &b.stmts {
            stmt(s, out);
        }
    }
    fn stmt(s: &Stmt, out: &mut BTreeSet<StmtId>) {
        match &s.kind {
            StmtKind::Return { .. } | StmtKind::Break | StmtKind::Continue => {
                out.insert(s.id);
            }
            StmtKind::If { then, els, .. } => {
                walk(then, out);
                if let Some(e) = els {
                    stmt(e, out);
                }
            }
            StmtKind::For { body, .. } => walk(body, out),
            StmtKind::BlockStmt { block } => walk(block, out),
            StmtKind::Switch { cases, default, .. } => {
                for c in cases {
                    walk(&c.body, out);
                }
                if let Some(d) = default {
                    walk(d, out);
                }
            }
            _ => {}
        }
    }
    let mut out = BTreeSet::new();
    walk(body, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalyzeOptions};
    use minigo_syntax::frontend;

    fn plan_for(src: &str) -> (Program, Resolution, PlacementPlan) {
        let (p, r, t) = frontend(src).expect("frontend");
        let a = analyze(&p, &r, &t, &AnalyzeOptions::default());
        let plan = plan_placement(&p, &r, &t, &a);
        (p, r, plan)
    }

    fn var_named(r: &Resolution, f: FuncId, name: &str) -> VarId {
        (0..r.vars().len())
            .map(|i| VarId(i as u32))
            .find(|v| r.var(*v).name == name && r.var(*v).func == f)
            .unwrap()
    }

    #[test]
    fn dead_tail_advances_free() {
        let (p, r, plan) = plan_for(
            "func f(n int) { s := make([]int, n)\n s[0] = 1\n t := make([]int, n)\n t[0] = 2\n print(t[0]) }\n",
        );
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        let adv = plan.advance.get(&f.id).expect("advances planned");
        let s = var_named(&r, f.id, "s");
        assert!(adv.iter().any(|(v, _, _)| *v == s), "s advances: {plan:?}");
        // t is used by the trailing print: no advancement.
        let t = var_named(&r, f.id, "t");
        assert!(!adv.iter().any(|(v, _, _)| *v == t));
    }

    #[test]
    fn alias_use_pins_liveness() {
        let (p, _r, plan) = plan_for(
            "func f(n int) { s := make([]int, n)\n u := s\n print(n)\n print(n)\n print(u[0]) }\n",
        );
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        // u reads the array at the end: neither s nor u may advance.
        assert!(!plan.advance.contains_key(&f.id), "{plan:?}");
    }

    #[test]
    fn dead_callee_arg_does_not_pin() {
        let (p, r, plan) = plan_for(
            "func g(s []int, n int) int { return n }\nfunc f(n int) { s := make([]int, n)\n s[0] = 1\n x := g(s, 2)\n print(x)\n print(n) }\nfunc main() { f(3) }\n",
        );
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        let adv = plan.advance.get(&f.id).expect("advance past dead arg");
        let s = var_named(&r, f.id, "s");
        let (_, _, after) = adv.iter().find(|(v, _, _)| *v == s).expect("s advances");
        // The free lands after `s[0] = 1`, before the g(s, 2) call.
        let body = &f.body.stmts;
        let idx = body.iter().position(|st| st.id == *after).unwrap();
        assert_eq!(idx, 1, "after the element store, not the call");
    }

    #[test]
    fn scope_mode_plans_nothing_by_construction() {
        // Scope compilations never call plan_placement; the plan default
        // is empty and reports mode=scope.
        let plan = PlacementPlan::default();
        assert_eq!(plan.stats.mode, FreePlacement::Scope);
        assert_eq!(plan.stats.lastuse_advanced, 0);
    }

    #[test]
    fn ptr_struct_partial_free_planned_per_field() {
        let (p, _r, plan) = plan_for(
            "type T struct { a []int\n b map[int]int }\nfunc f(n int) { x := &T{make([]int, n), make(map[int]int)}\n x.a[0] = 1\n print(x.a[0])\n x.b[1] = 2\n print(x.b[1])\n print(n) }\nfunc main() { f(2) }\n",
        );
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        let partials = plan.partials.get(&f.id).expect("partials planned");
        let a = partials.iter().find(|pf| pf.field == "a").expect("field a");
        let b = partials.iter().find(|pf| pf.field == "b").expect("field b");
        let body = &f.body.stmts;
        let ai = body.iter().position(|s| s.id == a.after).unwrap();
        let bi = body.iter().position(|s| s.id == b.after).unwrap();
        assert!(ai < bi, "a dies before b: {partials:?}");
        assert_eq!(a.kind, FreeKind::Slice);
        assert_eq!(b.kind, FreeKind::Map);
    }

    #[test]
    fn escaping_field_blocks_partial_free() {
        let (p, _r, plan) = plan_for(
            "func g(s []int) int { return s[0] }\ntype T struct { a []int }\nfunc f(n int) { x := &T{make([]int, n)}\n x.a[0] = 1\n print(g(x.a))\n print(n) }\nfunc main() { f(2) }\n",
        );
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        // x.a passed to a call: the reference escapes our syntactic
        // aliasing argument, no partial free.
        assert!(!plan.partials.contains_key(&f.id), "{plan:?}");
    }

    #[test]
    fn value_struct_partial_freed_at_struct_last_use() {
        let (p, _r, plan) = plan_for(
            "type T struct { a []int\n n int }\nfunc f(n int) { x := T{make([]int, n), 3}\n x.a[0] = 1\n print(x.a[0])\n print(n)\n print(n) }\nfunc main() { f(2) }\n",
        );
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        let partials = plan.partials.get(&f.id);
        if let Some(partials) = partials {
            let a = &partials[0];
            let body = &f.body.stmts;
            let ai = body.iter().position(|s| s.id == a.after).unwrap();
            assert_eq!(ai, 2, "after the last mention of x: {partials:?}");
        }
        // (If the solver pins value-struct locations the plan may be
        // empty; the directed assertion above only fires when planned.)
    }

    #[test]
    fn placement_parse_roundtrip() {
        assert_eq!(FreePlacement::parse("scope"), Some(FreePlacement::Scope));
        assert_eq!(
            FreePlacement::parse("lastuse"),
            Some(FreePlacement::LastUse)
        );
        assert_eq!(FreePlacement::parse("bogus"), None);
        assert_eq!(FreePlacement::LastUse.name(), "lastuse");
    }
}
