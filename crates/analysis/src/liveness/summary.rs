//! Context-sensitive parameter-use summaries (the liveness counterpart
//! of the §4.4 extended parameter tags).
//!
//! The escape summaries say where a parameter's referent may *end up*;
//! for last-use placement we additionally need to know whether a callee
//! *touches* a parameter's referent at all. A call `g(x)` whose callee
//! never reads, stores, frees, or forwards `x` does not extend `x`'s
//! live range — the caller may free `x`'s object before the call. The
//! summaries are computed bottom-up over the call graph and composed at
//! call sites: an argument passed straight through to a callee position
//! that is itself unused does not count as a use in the *caller* either,
//! which is what makes the refinement context-sensitive rather than a
//! per-function bit.

use std::collections::HashMap;

use minigo_syntax::{Block, Expr, ExprKind, FuncId, Program, Resolution, Stmt, StmtKind, VarId};

use crate::callgraph::CallGraph;

/// One function's liveness summary: which parameter positions the
/// function (transitively) uses.
#[derive(Debug, Clone, Default)]
pub struct UseSummary {
    /// Per parameter position: `false` means no occurrence of the
    /// parameter can touch its referent — every occurrence is a bare
    /// pass-through into a callee position that is itself unused.
    pub param_used: Vec<bool>,
}

impl UseSummary {
    /// Whether the parameter at `idx` may be used; out-of-range
    /// positions are conservatively used.
    pub fn used(&self, idx: usize) -> bool {
        self.param_used.get(idx).copied().unwrap_or(true)
    }
}

/// Computes use summaries for every function, bottom-up over the call
/// graph. Members of a recursion cycle and functions called through
/// unresolvable edges fall back to all-used (the sound default).
pub fn use_summaries(
    program: &Program,
    res: &Resolution,
    cg: &CallGraph,
) -> HashMap<FuncId, UseSummary> {
    let by_name: HashMap<&str, FuncId> = program
        .funcs
        .iter()
        .map(|f| (f.name.as_str(), f.id))
        .collect();
    let mut out: HashMap<FuncId, UseSummary> = HashMap::new();
    for &fid in cg.bottom_up() {
        let func = &program.funcs[fid.index()];
        let params = res.params_of(fid);
        let mut used = vec![false; params.len()];
        // A recursive function's own summary is not available while we
        // walk it; `arg_is_dead` below misses the lookup and counts the
        // occurrence, which is the conservative answer.
        let mut walker = UseWalker {
            res,
            by_name: &by_name,
            summaries: &out,
            params,
            used: &mut used,
        };
        walker.block(&func.body);
        out.insert(fid, UseSummary { param_used: used });
    }
    out
}

/// Whether argument expression `arg` at position `idx` of a call to
/// `callee` is a dead pass-through: a bare identifier handed to a
/// parameter position the callee provably never uses.
pub(crate) fn arg_is_dead(
    arg: &Expr,
    idx: usize,
    callee: &str,
    by_name: &HashMap<&str, FuncId>,
    summaries: &HashMap<FuncId, UseSummary>,
) -> bool {
    if !matches!(arg.kind, ExprKind::Ident(_)) {
        return false;
    }
    by_name
        .get(callee)
        .and_then(|fid| summaries.get(fid))
        .map(|s| !s.used(idx))
        .unwrap_or(false)
}

struct UseWalker<'a> {
    res: &'a Resolution,
    by_name: &'a HashMap<&'a str, FuncId>,
    summaries: &'a HashMap<FuncId, UseSummary>,
    params: &'a [VarId],
    used: &'a mut [bool],
}

impl<'a> UseWalker<'a> {
    fn mark(&mut self, expr_id: minigo_syntax::ExprId) {
        if let Some(v) = self.res.def_of(expr_id) {
            if let Some(i) = self.params.iter().position(|p| *p == v) {
                self.used[i] = true;
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(_) => self.mark(e.id),
            ExprKind::Unary { operand, .. } => self.expr(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Field { base, .. } => self.expr(base),
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.expr(index);
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                self.expr(base);
                for b in [lo, hi].into_iter().flatten() {
                    self.expr(b);
                }
            }
            ExprKind::Call { callee, args } => {
                for (i, a) in args.iter().enumerate() {
                    if arg_is_dead(a, i, callee, self.by_name, self.summaries) {
                        continue;
                    }
                    self.expr(a);
                }
            }
            ExprKind::Builtin { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.expr(f);
                }
            }
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Nil => {}
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => {
                init.iter().for_each(|e| self.expr(e))
            }
            StmtKind::Assign { lhs, rhs, .. } => lhs.iter().chain(rhs).for_each(|e| self.expr(e)),
            StmtKind::If { cond, then, els } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = els {
                    self.stmt(e);
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(p) = post {
                    self.stmt(p);
                }
                self.block(body);
            }
            StmtKind::Return { exprs } => exprs.iter().for_each(|e| self.expr(e)),
            StmtKind::Expr { expr } => self.expr(expr),
            StmtKind::BlockStmt { block } => self.block(block),
            StmtKind::Defer { call } => self.expr(call),
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.expr(subject);
                for case in cases {
                    case.values.iter().for_each(|v| self.expr(v));
                    self.block(&case.body);
                }
                if let Some(d) = default {
                    self.block(d);
                }
            }
            // A `tcfree(p)` occurrence counts as a use: the callee
            // touching the referent (even to free it) matters to a
            // caller deciding whether its own free may move earlier.
            StmtKind::Free { target, .. } => self.expr(target),
            StmtKind::Break | StmtKind::Continue => {}
        }
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_syntax::frontend;

    fn summaries_for(src: &str) -> (Program, Resolution, HashMap<FuncId, UseSummary>) {
        let (p, r, _t) = frontend(src).expect("frontend");
        let cg = CallGraph::build(&p);
        let s = use_summaries(&p, &r, &cg);
        (p, r, s)
    }

    fn summary<'a>(p: &Program, s: &'a HashMap<FuncId, UseSummary>, name: &str) -> &'a UseSummary {
        let f = p.funcs.iter().find(|f| f.name == name).unwrap();
        s.get(&f.id).unwrap()
    }

    #[test]
    fn unused_param_is_dead() {
        let (p, _r, s) =
            summaries_for("func g(s []int, n int) int { return n }\nfunc main() { print(g(make([]int, 4), 2)) }\n");
        let g = summary(&p, &s, "g");
        assert!(!g.used(0), "slice param never touched");
        assert!(g.used(1));
    }

    #[test]
    fn read_param_is_used() {
        let (p, _r, s) = summaries_for(
            "func g(s []int) int { return s[0] }\nfunc main() { print(g(make([]int, 4))) }\n",
        );
        assert!(summary(&p, &s, "g").used(0));
    }

    #[test]
    fn pass_through_to_dead_callee_is_dead() {
        let (p, _r, s) = summaries_for(
            "func leaf(s []int) int { return 1 }\nfunc mid(t []int) int { return leaf(t) }\nfunc main() { print(mid(make([]int, 4))) }\n",
        );
        assert!(!summary(&p, &s, "leaf").used(0));
        assert!(
            !summary(&p, &s, "mid").used(0),
            "pass-through into a dead position composes"
        );
    }

    #[test]
    fn pass_through_to_live_callee_is_used() {
        let (p, _r, s) = summaries_for(
            "func leaf(s []int) int { return s[0] }\nfunc mid(t []int) int { return leaf(t) }\nfunc main() { print(mid(make([]int, 4))) }\n",
        );
        assert!(summary(&p, &s, "mid").used(0));
    }

    #[test]
    fn recursion_stays_conservative() {
        let (p, _r, s) = summaries_for(
            "func f(s []int, n int) int { if n == 0 { return 0 }\n return f(s, n-1) }\nfunc main() { print(f(make([]int, 2), 3)) }\n",
        );
        assert!(
            summary(&p, &s, "f").used(0),
            "cycle member falls back to used"
        );
    }
}
