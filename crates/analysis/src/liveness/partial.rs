//! Partial-free candidate selection.
//!
//! The §6.5 target restriction abandons struct-typed locals even when
//! the escape analysis proves their location `ToFree` — `tcfree(x)` on
//! a value struct frees nothing, and the paper never frees pointers.
//! This module recovers the reclaimable *parts*: for a local struct (or
//! pointer-to-struct) `x` whose location is `ToFree`, it emits
//! `tcfree(x.f)` for each slice/map field whose backing store provably
//! has no alias outside `x.f` itself.
//!
//! The aliasing argument is deliberately syntactic and strict, so the
//! independent auditor can re-prove every emitted site:
//!
//! * `x` never occurs bare — only as the base of a field projection —
//!   so the struct (and everything reachable from it) is never copied,
//!   address-taken, passed, returned, or deferred;
//! * every store to `x.f` is a fresh `make(...)` (or `nil`), in the
//!   declaration literal and in every assignment, so the field's
//!   referent is never shared with another field or variable;
//! * `x.f` itself is only *consumed* — indexed (`x.f[i]`), measured
//!   (`len`/`cap`), or mutated in place (`x.f[i] = v`, `delete`) —
//!   never copied out, resliced, appended, passed, or returned.
//!
//! Under those rules the backing array (or map storage) of `x.f` is
//! reachable through `x.f` alone, and the statement after the last
//! occurrence of `x.f` is a sound free point even while the rest of
//! `x` stays live. Value structs are coarser: the auditor's domain
//! flattens their reference sets, so their partial frees are placed at
//! the *whole struct's* last use (and only emitted when every
//! pointerful field qualifies).

use std::collections::HashMap;

use minigo_syntax::{
    Block, Builtin, Expr, ExprKind, FreeKind, Func, Resolution, Stmt, StmtId, StmtKind, Type,
    TypeInfo, UnOp, VarId,
};

use super::PartialFree;
use crate::build::FuncGraph;

/// Whether the variable's type makes it a partial-free candidate;
/// returns the struct name and whether access goes through a pointer.
fn struct_shape(types: &TypeInfo, v: VarId) -> Option<(String, bool)> {
    match types.var(v) {
        Some(Type::Named(n)) => Some((n.clone(), false)),
        Some(Type::Ptr(inner)) => match &**inner {
            Type::Named(n) => Some((n.clone(), true)),
            _ => None,
        },
        _ => None,
    }
}

fn freeable_kind(ty: &Type) -> Option<FreeKind> {
    match ty {
        Type::Slice(_) => Some(FreeKind::Slice),
        Type::Map(_, _) => Some(FreeKind::Map),
        _ => None,
    }
}

fn is_fresh(e: &Expr) -> bool {
    matches!(
        &e.kind,
        ExprKind::Nil
            | ExprKind::Builtin {
                kind: Builtin::Make,
                ..
            }
    )
}

/// Plans partial frees for one function. `free_vars` are the variables
/// the primary selection already frees whole (never partial-freed too).
pub(crate) fn plan_partials(
    func: &Func,
    res: &Resolution,
    types: &TypeInfo,
    fg: &FuncGraph,
    free_vars: &[(VarId, FreeKind)],
) -> Vec<PartialFree> {
    let mut out = Vec::new();
    let mut candidates: Vec<VarId> = fg
        .var_locs
        .iter()
        .filter(|(v, loc)| {
            res.var(**v).kind == minigo_syntax::VarKind::Local
                && fg.graph.loc(**loc).to_free()
                && free_vars.iter().all(|(fv, _)| fv != *v)
        })
        .map(|(v, _)| *v)
        .collect();
    candidates.sort();
    for x in candidates {
        let Some((sname, through_ptr)) = struct_shape(types, x) else {
            continue;
        };
        let Some(fields) = types.fields_of(&sname) else {
            continue;
        };
        let fields = fields.to_vec();
        let freeable: Vec<(usize, String, Type, FreeKind)> = fields
            .iter()
            .enumerate()
            .filter_map(|(i, (n, t))| freeable_kind(t).map(|k| (i, n.clone(), t.clone(), k)))
            .collect();
        if freeable.is_empty() {
            continue;
        }
        // Value structs flatten in the auditor's domain: a stray
        // pointerful field would make every partial free unprovable.
        if !through_ptr
            && fields
                .iter()
                .any(|(_, t)| types.contains_pointers(t) && freeable_kind(t).is_none())
        {
            continue;
        }
        let mut scan = Scan {
            res,
            x,
            freeable_names: freeable.iter().map(|(_, n, _, _)| n.clone()).collect(),
            fields: fields.clone(),
            through_ptr,
            bail: false,
            bad: Vec::new(),
            decl_found: false,
            attribution: None,
            whole_last: None,
            field_last: HashMap::new(),
        };
        scan.find_and_scan(&func.body);
        if scan.bail || !scan.decl_found {
            continue;
        }
        let eligible: Vec<&(usize, String, Type, FreeKind)> = freeable
            .iter()
            .filter(|(_, n, _, _)| !scan.bad.contains(n))
            .collect();
        if eligible.is_empty() {
            continue;
        }
        if !through_ptr && eligible.len() != freeable.len() {
            // Value struct: one aliased field poisons the flattened set.
            continue;
        }
        for (_, name, ty, kind) in eligible {
            let after = if through_ptr {
                scan.field_last.get(name).copied().or(scan.whole_last)
            } else {
                scan.whole_last
            };
            let Some(after) = after else { continue };
            out.push(PartialFree {
                base: x,
                field: name.clone(),
                field_ty: ty.clone(),
                kind: *kind,
                after,
            });
        }
    }
    out.sort_by(|a, b| (a.base, &a.field).cmp(&(b.base, &b.field)));
    out
}

struct Scan<'a> {
    res: &'a Resolution,
    x: VarId,
    freeable_names: Vec<String>,
    fields: Vec<(String, Type)>,
    through_ptr: bool,
    /// A bare occurrence of `x` (or an unsupported declaration shape):
    /// the whole variable is abandoned.
    bail: bool,
    /// Fields with a disallowed occurrence or a non-fresh store.
    bad: Vec<String>,
    decl_found: bool,
    /// The statement id of the current top-level statement of the
    /// declaring block (mention attribution point).
    attribution: Option<StmtId>,
    whole_last: Option<StmtId>,
    field_last: HashMap<String, StmtId>,
}

impl<'a> Scan<'a> {
    /// Finds the block declaring `x` at top level and scans the whole
    /// function, attributing occurrences to that block's statements.
    fn find_and_scan(&mut self, body: &Block) {
        // Locate the declaring block first (occurrences can only be in
        // its subtree), then scan with attribution.
        if let Some(stmts) = find_decl_block(self.res, body, self.x) {
            let decl_idx = stmts.iter().position(|s| self.declares_x(s)).unwrap();
            if !self.check_decl(&stmts[decl_idx]) {
                self.bail = true;
                return;
            }
            self.decl_found = true;
            self.whole_last = Some(stmts[decl_idx].id);
            for stmt in stmts {
                self.attribution = Some(stmt.id);
                if !self.declares_x(stmt) {
                    self.scan_stmt(stmt);
                }
            }
            self.attribution = None;
        }
    }

    fn declares_x(&self, s: &Stmt) -> bool {
        matches!(
            s.kind,
            StmtKind::VarDecl { .. } | StmtKind::ShortDecl { .. }
        ) && (0..16).any(|i| self.res.decl_of(s.id, i) == Some(self.x))
    }

    /// Validates the declaration initializer; marks non-fresh freeable
    /// field initializers bad. Returns false to bail the variable.
    fn check_decl(&mut self, s: &Stmt) -> bool {
        let (names_len, init) = match &s.kind {
            StmtKind::VarDecl { names, init, .. } | StmtKind::ShortDecl { names, init } => {
                (names.len(), init)
            }
            _ => return false,
        };
        let pos = (0..names_len)
            .find(|i| self.res.decl_of(s.id, *i) == Some(self.x))
            .unwrap_or(0);
        if init.is_empty() {
            // `var x T`: zero value. Fine for a value struct (all-nil
            // fields); a nil pointer-struct is never dereferenceable.
            return !self.through_ptr;
        }
        if init.len() != names_len {
            return false; // multi-value call initializer: unknown aliasing
        }
        let lit = match (&init[pos].kind, self.through_ptr) {
            (ExprKind::StructLit { fields, .. }, false) => fields,
            (
                ExprKind::Unary {
                    op: UnOp::Addr,
                    operand,
                },
                true,
            ) => match &operand.kind {
                ExprKind::StructLit { fields, .. } => fields,
                _ => return false,
            },
            _ => return false,
        };
        for (i, fe) in lit.iter().enumerate() {
            if let Some((fname, _)) = self.fields.get(i) {
                if self.freeable_names.contains(fname) && !is_fresh(fe) {
                    self.bad.push(fname.clone());
                }
            }
        }
        true
    }

    /// `Some(field)` when `e` is exactly `x.<field>`.
    fn x_field<'e>(&self, e: &'e Expr) -> Option<&'e str> {
        if let ExprKind::Field { base, name } = &e.kind {
            if matches!(base.kind, ExprKind::Ident(_)) && self.res.def_of(base.id) == Some(self.x) {
                return Some(name);
            }
        }
        None
    }

    fn note(&mut self, field: &str) {
        if let Some(at) = self.attribution {
            self.whole_last = Some(at);
            self.field_last.insert(field.to_string(), at);
        } else {
            self.bail = true;
        }
    }

    fn mark_bad(&mut self, field: &str) {
        if !self.bad.iter().any(|f| f == field) {
            self.bad.push(field.to_string());
        }
    }

    fn scan_expr(&mut self, e: &Expr) {
        if let Some(f) = self.x_field(e) {
            // A field projection reaching here was not consumed by an
            // allowed context: the reference is copied out.
            let f = f.to_string();
            self.note(&f);
            self.mark_bad(&f);
            return;
        }
        match &e.kind {
            ExprKind::Ident(_) => {
                if self.res.def_of(e.id) == Some(self.x) {
                    self.bail = true;
                }
            }
            ExprKind::Index { base, index } => {
                if let Some(f) = self.x_field(base) {
                    let f = f.to_string();
                    self.note(&f); // x.f[i]: element access, array stays put
                } else {
                    self.scan_expr(base);
                }
                self.scan_expr(index);
            }
            ExprKind::Builtin { kind, args, .. } => {
                let measured = matches!(kind, Builtin::Len | Builtin::Cap | Builtin::Delete);
                for (i, a) in args.iter().enumerate() {
                    if i == 0 && measured {
                        if let Some(f) = self.x_field(a) {
                            let f = f.to_string();
                            self.note(&f);
                            continue;
                        }
                    }
                    self.scan_expr(a);
                }
            }
            ExprKind::Unary { operand, .. } => self.scan_expr(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.scan_expr(lhs);
                self.scan_expr(rhs);
            }
            ExprKind::Field { base, .. } => self.scan_expr(base),
            ExprKind::SliceExpr { base, lo, hi } => {
                self.scan_expr(base);
                for b in [lo, hi].into_iter().flatten() {
                    self.scan_expr(b);
                }
            }
            ExprKind::Call { args, .. } => args.iter().for_each(|a| self.scan_expr(a)),
            ExprKind::StructLit { fields, .. } => fields.iter().for_each(|f| self.scan_expr(f)),
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Nil => {}
        }
    }

    fn scan_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Assign { lhs, op, rhs } => {
                if lhs.len() == rhs.len() {
                    for (l, r) in lhs.iter().zip(rhs) {
                        if let Some(f) = self.x_field(l) {
                            let f = f.to_string();
                            self.note(&f);
                            if op.is_some() || !is_fresh(r) {
                                self.mark_bad(&f);
                            }
                            if !is_fresh(r) {
                                self.scan_expr(r);
                            }
                            continue;
                        }
                        self.scan_lvalue(l);
                        self.scan_expr(r);
                    }
                } else {
                    // Multi-value call RHS: opaque provenance.
                    for l in lhs {
                        if let Some(f) = self.x_field(l) {
                            let f = f.to_string();
                            self.note(&f);
                            self.mark_bad(&f);
                        } else {
                            self.scan_lvalue(l);
                        }
                    }
                    rhs.iter().for_each(|r| self.scan_expr(r));
                }
            }
            StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => {
                init.iter().for_each(|e| self.scan_expr(e))
            }
            StmtKind::If { cond, then, els } => {
                self.scan_expr(cond);
                self.scan_block(then);
                if let Some(e) = els {
                    self.scan_stmt(e);
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(i) = init {
                    self.scan_stmt(i);
                }
                if let Some(c) = cond {
                    self.scan_expr(c);
                }
                if let Some(p) = post {
                    self.scan_stmt(p);
                }
                self.scan_block(body);
            }
            StmtKind::Return { exprs } => exprs.iter().for_each(|e| self.scan_expr(e)),
            StmtKind::Expr { expr } => self.scan_expr(expr),
            StmtKind::BlockStmt { block } => self.scan_block(block),
            StmtKind::Defer { call } => self.scan_expr(call),
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.scan_expr(subject);
                for case in cases {
                    case.values.iter().for_each(|v| self.scan_expr(v));
                    self.scan_block(&case.body);
                }
                if let Some(d) = default {
                    self.scan_block(d);
                }
            }
            StmtKind::Free { target, .. } => self.scan_expr(target),
            StmtKind::Break | StmtKind::Continue => {}
        }
    }

    /// An assignment target that is not `x.f` itself: `x.f[i] = v` and
    /// `x.f[k] = v` keep the storage in place and are allowed.
    fn scan_lvalue(&mut self, l: &Expr) {
        if let ExprKind::Index { base, index } = &l.kind {
            if let Some(f) = self.x_field(base) {
                let f = f.to_string();
                self.note(&f);
                self.scan_expr(index);
                return;
            }
        }
        self.scan_expr(l);
    }

    fn scan_block(&mut self, b: &Block) {
        // Nested blocks keep the enclosing top-level attribution.
        for s in &b.stmts {
            self.scan_stmt(s);
        }
    }
}

/// Finds the statement list of the block declaring `x` at top level.
fn find_decl_block<'p>(res: &Resolution, body: &'p Block, x: VarId) -> Option<&'p [Stmt]> {
    fn declares(res: &Resolution, s: &Stmt, x: VarId) -> bool {
        matches!(
            s.kind,
            StmtKind::VarDecl { .. } | StmtKind::ShortDecl { .. }
        ) && (0..16).any(|i| res.decl_of(s.id, i) == Some(x))
    }
    fn walk<'p>(res: &Resolution, b: &'p Block, x: VarId) -> Option<&'p [Stmt]> {
        if b.stmts.iter().any(|s| declares(res, s, x)) {
            return Some(&b.stmts);
        }
        for s in &b.stmts {
            let found = match &s.kind {
                StmtKind::If { then, els, .. } => walk(res, then, x).or_else(|| {
                    els.as_ref().and_then(|e| match &e.kind {
                        StmtKind::BlockStmt { block } => walk(res, block, x),
                        StmtKind::If { .. } => {
                            // else-if chain: wrap through recursion.
                            let tmp = std::slice::from_ref(&**e);
                            tmp.iter().find_map(|s| match &s.kind {
                                StmtKind::If { then, els, .. } => {
                                    walk(res, then, x).or_else(|| {
                                        els.as_ref().and_then(|e2| match &e2.kind {
                                            StmtKind::BlockStmt { block } => walk(res, block, x),
                                            _ => None,
                                        })
                                    })
                                }
                                _ => None,
                            })
                        }
                        _ => None,
                    })
                }),
                StmtKind::For { body, .. } => walk(res, body, x),
                StmtKind::BlockStmt { block } => walk(res, block, x),
                StmtKind::Switch { cases, default, .. } => cases
                    .iter()
                    .find_map(|c| walk(res, &c.body, x))
                    .or_else(|| default.as_ref().and_then(|d| walk(res, d, x))),
                _ => None,
            };
            if found.is_some() {
                return found;
            }
        }
        None
    }
    walk(res, body, x)
}
