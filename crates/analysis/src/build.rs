//! Escape graph construction from the AST (table 2 of the paper, plus the
//! slice/map/call modeling of §4.4–§4.6).
//!
//! The builder walks one function and emits locations and weighted edges.
//! It is flow-insensitive and field-insensitive, exactly like Go's
//! analysis: statement order does not matter, and all fields of a struct
//! share the struct's location. Indirect stores are *not* tracked — the
//! stored value flows to the `heapLoc` dummy, and (for GoFree) the pointer
//! stored through is marked `Exposes` (definition 4.11 clause 3).
//!
//! The same graph is built for both "plain Go" and GoFree modes; the modes
//! differ only in which constraints the solver applies and in what the
//! decision/instrumentation layers do with the solution.

use std::collections::HashMap;

use minigo_syntax::{
    Builtin, Expr, ExprId, ExprKind, Func, FuncId, Program, Resolution, StmtKind, Type, TypeInfo,
    UnOp, VarId,
};

use crate::graph::{AllocKind, ContentOrigin, EscapeGraph, LocId, LocKind, HEAP_LOC};
use crate::summary::FuncSummary;

/// Options controlling graph construction and allocation decisions.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Allocations larger than this (or of unknown size) are heap-allocated
    /// regardless of escape behaviour, mirroring Go's implicit-allocation
    /// size limit.
    pub max_stack_bytes: u64,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            max_stack_bytes: 64 * 1024,
        }
    }
}

/// An allocation site (a `make`, `new`, or `&T{..}` expression).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// The site's location in the escape graph.
    pub loc: LocId,
    /// What kind of object it creates.
    pub kind: AllocKind,
    /// Compile-time size in bytes, if constant.
    pub const_size: Option<u64>,
}

/// One function's escape graph plus the site tables later passes need.
#[derive(Debug, Clone)]
pub struct FuncGraph {
    /// The function.
    pub func: FuncId,
    /// The graph (solve it with [`crate::solve::solve`]).
    pub graph: EscapeGraph,
    /// The per-function `return` dummy location.
    pub return_dummy: LocId,
    /// Variable → location.
    pub var_locs: HashMap<VarId, LocId>,
    /// Allocation expression → site info.
    pub alloc_sites: HashMap<ExprId, AllocSite>,
    /// Callee-side content tags, one per result (§4.4), used when this
    /// function's summary is extracted.
    pub result_tags: Vec<LocId>,
}

impl FuncGraph {
    /// The location of variable `v`, which must belong to this function.
    pub fn loc_of(&self, v: VarId) -> LocId {
        self.var_locs[&v]
    }
}

/// Builds the escape graph for `func`, resolving call sites against
/// `summaries` (missing entries use the conservative default tag).
pub fn build_func_graph(
    program: &Program,
    res: &Resolution,
    types: &TypeInfo,
    func: &Func,
    summaries: &HashMap<FuncId, FuncSummary>,
    opts: &BuildOptions,
) -> FuncGraph {
    let mut b = Builder {
        program,
        res,
        types,
        summaries,
        opts,
        g: EscapeGraph::new(),
        return_dummy: HEAP_LOC, // replaced below
        var_locs: HashMap::new(),
        alloc_sites: HashMap::new(),
        result_tags: Vec::new(),
        decl_depth: 1,
        loop_depth: 0,
        func,
    };

    // The per-function return dummy (definition 4.2): HeapAlloc(return) is
    // true (def 4.10) and DeclDepth(return) = -1 (def 4.13), which makes
    // every pointer to a returned object Outlived inside the callee.
    let ret =
        b.g.add_location(LocKind::ReturnDummy, "return", -1, -1, true);
    b.g.loc_mut(ret).heap_alloc = true;
    b.return_dummy = ret;

    // Locations for every variable of this function.
    for (i, info) in res.vars().iter().enumerate() {
        if info.func != func.id {
            continue;
        }
        let vid = VarId(i as u32);
        let ty = types.var(vid);
        let pointerful = ty.map(|t| types.contains_pointers(t)).unwrap_or(true);
        let loc = b.g.add_location(
            LocKind::Var(vid),
            info.name.clone(),
            info.loop_depth,
            info.decl_depth,
            pointerful,
        );
        b.var_locs.insert(vid, loc);
    }

    // Result locations flow into the return dummy; GoFree also attaches a
    // content tag c_j per result with an edge c_j -(-1)-> r_j (§4.4).
    for (j, &rvar) in res.results_of(func.id).iter().enumerate() {
        let rloc = b.var_locs[&rvar];
        b.g.add_edge(rloc, ret, 0);
        let pointerful = b.g.loc(rloc).pointerful;
        let tag = b.g.add_location(
            LocKind::Content(ContentOrigin::CallResult(ExprId(u32::MAX), j)),
            format!("ContentTag(${j})"),
            0,
            1,
            pointerful,
        );
        b.g.add_edge(tag, rloc, -1);
        b.result_tags.push(tag);
    }

    // Formal parameters have unknown callers during intra-procedural
    // analysis: Incomplete(param) = true (definition 4.12 clause a).
    for &pvar in res.params_of(func.id) {
        let ploc = b.var_locs[&pvar];
        if b.g.loc(ploc).pointerful {
            b.g.loc_mut(ploc).incomplete = true;
        }
    }

    for stmt in &func.body.stmts {
        b.stmt(stmt);
    }

    FuncGraph {
        func: func.id,
        graph: b.g,
        return_dummy: b.return_dummy,
        var_locs: b.var_locs,
        alloc_sites: b.alloc_sites,
        result_tags: b.result_tags,
    }
}

struct Builder<'a> {
    program: &'a Program,
    res: &'a Resolution,
    types: &'a TypeInfo,
    summaries: &'a HashMap<FuncId, FuncSummary>,
    opts: &'a BuildOptions,
    g: EscapeGraph,
    return_dummy: LocId,
    var_locs: HashMap<VarId, LocId>,
    alloc_sites: HashMap<ExprId, AllocSite>,
    result_tags: Vec<LocId>,
    decl_depth: i32,
    loop_depth: i32,
    func: &'a Func,
}

impl<'a> Builder<'a> {
    fn loc_of_var(&self, expr: &Expr) -> Option<LocId> {
        let vid = self.res.def_of(expr.id)?;
        self.var_locs.get(&vid).copied()
    }

    fn expr_pointerful(&self, e: &Expr) -> bool {
        self.types
            .expr(e.id)
            .map(|t| self.types.contains_pointers(t))
            .unwrap_or(true)
    }

    fn temp(&mut self, e: &Expr, pointerful: bool) -> LocId {
        self.g.add_location(
            LocKind::Temp(e.id),
            format!("tmp@{}", e.id),
            self.loop_depth,
            self.decl_depth,
            pointerful,
        )
    }

    // ---- statements ----

    fn stmt(&mut self, stmt: &minigo_syntax::Stmt) {
        match &stmt.kind {
            StmtKind::VarDecl { names, init, .. } | StmtKind::ShortDecl { names, init } => {
                let dsts: Vec<LocId> = (0..names.len())
                    .map(|i| {
                        let vid = self.res.decl_of(stmt.id, i).expect("resolved declaration");
                        self.var_locs[&vid]
                    })
                    .collect();
                if init.len() == 1 && names.len() > 1 {
                    let targets: Vec<(LocId, i32)> = dsts.iter().map(|&d| (d, 0)).collect();
                    self.multi_value(&init[0], &targets);
                } else {
                    for (i, e) in init.iter().enumerate() {
                        self.connect(dsts[i], 0, e);
                    }
                }
            }
            StmtKind::Assign { lhs, op, rhs } => {
                if op.is_some() {
                    // Compound assignment only exists for ints and strings,
                    // so no pointers flow — but a compound store into a map
                    // or slice is still an indirect store (exposure, and
                    // possible bucket growth for maps).
                    self.effect_only(&rhs[0]);
                    match &lhs[0].kind {
                        ExprKind::Index { base, index } => {
                            self.effect_only(index);
                            let is_map = matches!(self.types.expr(base.id), Some(Type::Map(_, _)));
                            self.indirect_store(base, None, is_map.then_some(lhs[0].id));
                        }
                        ExprKind::Unary {
                            op: UnOp::Deref,
                            operand,
                        } => self.indirect_store(operand, None, None),
                        _ => {}
                    }
                    return;
                }
                if rhs.len() == 1 && lhs.len() > 1 {
                    // Parallel destructuring of a multi-value call: route
                    // each result through a temp, then into the lvalue.
                    let temps: Vec<(LocId, i32)> = lhs
                        .iter()
                        .map(|l| (self.temp(l, self.expr_pointerful(l)), 0))
                        .collect();
                    self.multi_value(&rhs[0], &temps);
                    for (l, (t, _)) in lhs.iter().zip(&temps) {
                        self.assign_from_loc(l, *t);
                    }
                } else {
                    for (l, r) in lhs.iter().zip(rhs) {
                        self.assign(l, r);
                    }
                }
            }
            StmtKind::If { cond, then, els } => {
                self.effect_only(cond);
                self.decl_depth += 1;
                for s in &then.stmts {
                    self.stmt(s);
                }
                self.decl_depth -= 1;
                if let Some(els) = els {
                    self.stmt(els);
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                self.decl_depth += 1; // implicit for-scope
                if let Some(init) = init {
                    self.stmt(init);
                }
                if let Some(cond) = cond {
                    self.effect_only(cond);
                }
                if let Some(post) = post {
                    self.stmt(post);
                }
                self.decl_depth += 1;
                self.loop_depth += 1;
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.loop_depth -= 1;
                self.decl_depth -= 2;
            }
            StmtKind::Return { exprs } => {
                let results = self.res.results_of(self.func.id).to_vec();
                if exprs.len() == 1 && results.len() > 1 {
                    let targets: Vec<(LocId, i32)> =
                        results.iter().map(|r| (self.var_locs[r], 0)).collect();
                    self.multi_value(&exprs[0], &targets);
                } else {
                    for (rvar, e) in results.iter().zip(exprs) {
                        let d = self.var_locs[rvar];
                        self.connect(d, 0, e);
                    }
                }
            }
            StmtKind::Expr { expr } => self.effect_only(expr),
            StmtKind::BlockStmt { block } => {
                self.decl_depth += 1;
                for s in &block.stmts {
                    self.stmt(s);
                }
                self.decl_depth -= 1;
            }
            StmtKind::Defer { call } => {
                // Deferred calls run at function exit: their argument values
                // must survive until then, and the objects they reference
                // are banned from freeing (§5, "Safety upon Defer and
                // Panic").
                self.effect_only(call);
                if let ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } = &call.kind {
                    for a in args {
                        if self.expr_pointerful(a) {
                            self.connect(HEAP_LOC, 0, a);
                        }
                        self.pin_idents(a);
                    }
                }
            }
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.effect_only(subject);
                for case in cases {
                    for v in &case.values {
                        self.effect_only(v);
                    }
                    self.decl_depth += 1;
                    for st in &case.body.stmts {
                        self.stmt(st);
                    }
                    self.decl_depth -= 1;
                }
                if let Some(default) = default {
                    self.decl_depth += 1;
                    for st in &default.stmts {
                        self.stmt(st);
                    }
                    self.decl_depth -= 1;
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Free { target, .. } => self.effect_only(target),
        }
    }

    /// Evaluates an expression for its side effects (calls, allocations)
    /// without a meaningful destination.
    fn effect_only(&mut self, e: &Expr) {
        let t = self.temp(e, self.expr_pointerful(e));
        self.connect(t, 0, e);
    }

    /// Marks every variable mentioned in `e` as pinned (never freed).
    fn pin_idents(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(_) => {
                if let Some(loc) = self.loc_of_var(e) {
                    self.g.loc_mut(loc).pinned = true;
                }
            }
            ExprKind::Unary { operand, .. } => self.pin_idents(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.pin_idents(lhs);
                self.pin_idents(rhs);
            }
            ExprKind::Field { base, .. } => self.pin_idents(base),
            ExprKind::Index { base, index } => {
                self.pin_idents(base);
                self.pin_idents(index);
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                self.pin_idents(base);
                for bound in [lo, hi].into_iter().flatten() {
                    self.pin_idents(bound);
                }
            }
            ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } => {
                for a in args {
                    self.pin_idents(a);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.pin_idents(f);
                }
            }
            _ => {}
        }
    }

    // ---- assignments ----

    fn assign(&mut self, lv: &Expr, rhs: &Expr) {
        match &lv.kind {
            ExprKind::Ident(_) => {
                if let Some(loc) = self.loc_of_var(lv) {
                    self.connect(loc, 0, rhs);
                }
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => self.indirect_store(operand, Some(rhs), None),
            ExprKind::Field { .. } => match self.direct_root(lv) {
                Some(root_loc) => self.connect(root_loc, 0, rhs),
                None => {
                    let base = match &lv.kind {
                        ExprKind::Field { base, .. } => base,
                        _ => unreachable!(),
                    };
                    self.indirect_store(base, Some(rhs), None);
                }
            },
            ExprKind::Index { base, index } => {
                self.effect_only(index);
                let is_map = matches!(self.types.expr(base.id), Some(Type::Map(_, _)));
                let grow = is_map.then_some(lv.id);
                self.indirect_store(base, Some(rhs), grow);
            }
            _ => {
                // The type checker rejects other lvalues.
                self.effect_only(rhs);
            }
        }
    }

    /// Assignment of an already-evaluated temp into an lvalue (used by
    /// parallel destructuring).
    fn assign_from_loc(&mut self, lv: &Expr, src: LocId) {
        match &lv.kind {
            ExprKind::Ident(_) => {
                if let Some(loc) = self.loc_of_var(lv) {
                    self.g.add_edge(src, loc, 0);
                }
            }
            _ => {
                // Indirect store of the temp's value.
                self.g.add_edge(src, HEAP_LOC, 0);
                match &lv.kind {
                    ExprKind::Unary {
                        op: UnOp::Deref,
                        operand,
                    } => self.indirect_store(operand, None, None),
                    ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => {
                        let is_map = matches!(self.types.expr(base.id), Some(Type::Map(_, _)));
                        self.indirect_store(base, None, is_map.then_some(lv.id));
                    }
                    _ => {}
                }
            }
        }
    }

    /// Models `*ptr = rhs` (and stores through fields/indexes): the stored
    /// value conservatively escapes to the heap (table 2 row 4), and the
    /// pointer stored through becomes `Exposes` (definition 4.11 clause 3).
    /// Map stores additionally model possible bucket growth (§4.6.2).
    fn indirect_store(&mut self, ptr: &Expr, rhs: Option<&Expr>, map_growth: Option<ExprId>) {
        if let Some(rhs) = rhs {
            if self.expr_pointerful(rhs) {
                self.connect(HEAP_LOC, 0, rhs);
            } else {
                self.effect_only(rhs);
            }
        }
        let expose_loc = match &ptr.kind {
            ExprKind::Ident(_) => self.loc_of_var(ptr),
            _ => {
                let t = self.temp(ptr, true);
                self.connect(t, 0, ptr);
                Some(t)
            }
        };
        if let Some(loc) = expose_loc {
            if self.g.loc(loc).pointerful {
                self.g.loc_mut(loc).exposes = true;
            }
            if let Some(site) = map_growth {
                // A store may grow the map: a fresh heap bucket array the
                // map then points to.
                let grow = self.g.add_location(
                    LocKind::Content(ContentOrigin::MapGrowth(site)),
                    "mapGrow",
                    self.loop_depth,
                    self.decl_depth,
                    true,
                );
                self.g.loc_mut(grow).heap_alloc = true;
                self.g.add_edge(grow, loc, -1);
            }
        }
    }

    /// If the lvalue chain reaches a variable through struct *values* only
    /// (no pointer hops), returns that variable's location.
    fn direct_root(&mut self, e: &Expr) -> Option<LocId> {
        match &e.kind {
            ExprKind::Ident(_) => self.loc_of_var(e),
            ExprKind::Field { base, .. } => {
                match self.types.expr(base.id) {
                    Some(Type::Named(_)) => self.direct_root(base),
                    _ => None, // pointer hop or unknown: indirect
                }
            }
            _ => None,
        }
    }

    // ---- expression flow ----

    /// Routes the value of `e` into `dst` with dereference offset `k`
    /// (k = 0: plain value flow; k = -1: address-of; k = +1: load).
    fn connect(&mut self, dst: LocId, k: i32, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Nil => {}
            ExprKind::Ident(_) => {
                if let Some(loc) = self.loc_of_var(e) {
                    self.g.add_edge(loc, dst, k);
                }
            }
            ExprKind::Unary { op, operand } => match op {
                UnOp::Addr => self.connect(dst, k - 1, operand),
                UnOp::Deref => self.connect(dst, k + 1, operand),
                UnOp::Neg | UnOp::Not => self.effect_only(operand),
            },
            ExprKind::Binary { lhs, rhs, .. } => {
                // Arithmetic/comparison/string ops carry no pointers.
                self.effect_only(lhs);
                self.effect_only(rhs);
            }
            ExprKind::Field { base, .. } => {
                let through_ptr = matches!(self.types.expr(base.id), Some(Type::Ptr(_)));
                self.connect(dst, if through_ptr { k + 1 } else { k }, base);
            }
            ExprKind::Index { base, index } => {
                self.effect_only(index);
                match self.types.expr(base.id) {
                    Some(Type::Slice(_) | Type::Map(_, _)) => self.connect(dst, k + 1, base),
                    _ => self.effect_only(base),
                }
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                // The reslice aliases the same backing array: plain value
                // flow (§4.6.1).
                for bound in [lo, hi].into_iter().flatten() {
                    self.effect_only(bound);
                }
                self.connect(dst, k, base);
            }
            ExprKind::StructLit { fields, .. } => {
                if k <= -1 {
                    // &T{...}: a fresh object allocation.
                    let (size, pointerful) = match self.types.expr(e.id) {
                        Some(t) => (
                            Some(self.types.inline_size(t)),
                            self.types.contains_pointers(t),
                        ),
                        None => (None, true),
                    };
                    let a = self.alloc_loc(e, AllocKind::Object, size, "structLit", pointerful);
                    for f in fields {
                        self.connect(a, 0, f);
                    }
                    self.g.add_edge(a, dst, k);
                } else {
                    // Value semantics: field values live in the destination.
                    for f in fields {
                        self.connect(dst, k, f);
                    }
                }
            }
            ExprKind::Builtin {
                kind,
                ty_args,
                args,
            } => {
                self.builtin(e, *kind, ty_args, args, dst, k);
            }
            ExprKind::Call { .. } => {
                self.multi_value(e, &[(dst, k)]);
            }
        }
    }

    fn alloc_loc(
        &mut self,
        e: &Expr,
        kind: AllocKind,
        const_size: Option<u64>,
        name: &str,
        pointerful: bool,
    ) -> LocId {
        let loc = self.g.add_location(
            LocKind::Alloc(e.id, kind),
            format!("{name}@{}", e.id),
            self.loop_depth,
            self.decl_depth,
            pointerful,
        );
        // Non-constant or oversized allocations can never live on the
        // stack; seeding HeapAlloc here both records the decision and lets
        // PointsToHeap (definition 4.16) see them.
        let forced_heap = match const_size {
            Some(sz) => sz > self.opts.max_stack_bytes,
            None => true,
        };
        if forced_heap {
            self.g.loc_mut(loc).heap_alloc = true;
        }
        self.alloc_sites.insert(
            e.id,
            AllocSite {
                loc,
                kind,
                const_size,
            },
        );
        loc
    }

    fn builtin(
        &mut self,
        e: &Expr,
        kind: Builtin,
        ty_args: &[Type],
        args: &[Expr],
        dst: LocId,
        k: i32,
    ) {
        match kind {
            Builtin::Make => {
                let ty = &ty_args[0];
                match ty {
                    Type::Slice(elem) => {
                        for a in args {
                            self.effect_only(a);
                        }
                        let cap_expr = args.last();
                        let const_cap = cap_expr.and_then(|a| match a.kind {
                            ExprKind::IntLit(v) if v >= 0 => Some(v as u64),
                            _ => None,
                        });
                        let const_size = const_cap.map(|c| c * self.types.inline_size(elem));
                        let pointerful = self.types.contains_pointers(elem);
                        let a = self.alloc_loc(
                            e,
                            AllocKind::SliceArray,
                            const_size,
                            "make",
                            pointerful,
                        );
                        self.g.add_edge(a, dst, k - 1);
                    }
                    Type::Map(_, _) => {
                        // hmap + one initial bucket: constant-sized, so a
                        // non-escaping map can live on the stack (table 8's
                        // "Stack maps" column).
                        let pointerful = match ty {
                            Type::Map(k, v) => {
                                self.types.contains_pointers(k) || self.types.contains_pointers(v)
                            }
                            _ => true,
                        };
                        let a = self.alloc_loc(
                            e,
                            AllocKind::MapBuckets,
                            Some(crate::MAP_BASE_BYTES),
                            "makemap",
                            pointerful,
                        );
                        self.g.add_edge(a, dst, k - 1);
                    }
                    _ => {}
                }
            }
            Builtin::New => {
                let size = self.types.inline_size(&ty_args[0]);
                let pointerful = self.types.contains_pointers(&ty_args[0]);
                let a = self.alloc_loc(e, AllocKind::Object, Some(size), "new", pointerful);
                self.g.add_edge(a, dst, k - 1);
            }
            Builtin::Append => {
                // Result aliases the old array...
                self.connect(dst, k, &args[0]);
                // ...or a fresh heap array from implicit growth (§4.6.1).
                let m = self.g.add_location(
                    LocKind::Content(ContentOrigin::SliceAppend(e.id)),
                    "appendGrow",
                    self.loop_depth,
                    self.decl_depth,
                    true,
                );
                self.g.loc_mut(m).heap_alloc = true;
                self.g.add_edge(m, dst, k - 1);
                // The appended value is stored through the slice: an
                // indirect store.
                if self.expr_pointerful(&args[1]) {
                    self.connect(HEAP_LOC, 0, &args[1]);
                } else {
                    self.effect_only(&args[1]);
                }
            }
            Builtin::Panic => {
                for a in args {
                    if self.expr_pointerful(a) {
                        self.connect(HEAP_LOC, 0, a);
                    } else {
                        self.effect_only(a);
                    }
                    self.pin_idents(a);
                }
            }
            Builtin::Len | Builtin::Cap | Builtin::Delete | Builtin::Print | Builtin::Itoa => {
                for a in args {
                    self.effect_only(a);
                }
            }
        }
    }

    /// Instantiates a call site: the callee's extended parameter tag is
    /// embedded as a subgraph (§4.4). `dsts` are the destinations of the
    /// call's results with their dereference offsets.
    fn multi_value(&mut self, call: &Expr, dsts: &[(LocId, i32)]) {
        let (callee, args) = match &call.kind {
            ExprKind::Call { callee, args } => (callee, args),
            _ => {
                // A non-call in multi-value position was rejected by the
                // type checker; single-value fallthrough.
                if let [(dst, k)] = dsts {
                    self.connect(*dst, *k, call);
                }
                return;
            }
        };
        let fid = self
            .res
            .func_by_name(callee)
            .expect("resolver checked callees");
        let callee_func = &self.program.funcs[fid.index()];
        let default = FuncSummary::default_tag(callee_func.params.len(), callee_func.results.len());
        let tag = self.summaries.get(&fid).unwrap_or(&default).clone();

        // Evaluate arguments into temps.
        let mut arg_temps = Vec::with_capacity(args.len());
        for a in args {
            let t = self.temp(a, self.expr_pointerful(a));
            self.connect(t, 0, a);
            arg_temps.push(t);
        }
        for (i, &t) in arg_temps.iter().enumerate() {
            if tag.param_exposes.get(i).copied().unwrap_or(true) && self.g.loc(t).pointerful {
                self.g.loc_mut(t).exposes = true;
            }
        }
        for edge in tag.heap_edges() {
            // Only value-level escape matters to the caller: derefs == -1
            // would mean the callee's own parameter copy escaped, which is
            // invisible here.
            if edge.derefs >= 0 {
                if let Some(&t) = arg_temps.get(edge.param) {
                    self.g.add_edge(t, HEAP_LOC, edge.derefs);
                }
            }
        }

        for (j, &(dst, k)) in dsts.iter().enumerate() {
            // Content tag: what result j points to (callee allocations).
            let c = self.g.add_location(
                LocKind::Content(ContentOrigin::CallResult(call.id, j)),
                format!("ret{j}@{callee}"),
                self.loop_depth,
                self.decl_depth,
                true,
            );
            if tag.result_heap.get(j).copied().unwrap_or(true) {
                self.g.loc_mut(c).heap_alloc = true;
            }
            if tag.result_incomplete.get(j).copied().unwrap_or(true) {
                // The callee's indirect stores mean the result may point at
                // objects the graph does not track: the destination's own
                // points-to set is incomplete (§4.4's fig. 7 `old`).
                if self.g.loc(dst).pointerful {
                    self.g.loc_mut(dst).incomplete = true;
                    self.g.loc_mut(dst).incomplete_internal = true;
                }
            }
            self.g.add_edge(c, dst, k - 1);

            for edge in tag.edges_to_result(j) {
                let Some(&t) = arg_temps.get(edge.param) else {
                    continue;
                };
                if edge.derefs == -1 {
                    // The callee returned the address of (a copy holding)
                    // the argument's value: the value flows into the
                    // result's content, and conservatively also straight
                    // into the destination (a parallel value-flow track may
                    // have been shadowed by MinDerefs taking the minimum).
                    self.g.add_edge(t, c, 0);
                    self.g.add_edge(t, dst, k.max(0));
                } else {
                    self.g.add_edge(t, dst, edge.derefs + k);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{points_to, solve, SolveConfig};
    use minigo_syntax::frontend;

    fn build_first(src: &str) -> (minigo_syntax::Program, Resolution, TypeInfo, FuncGraph) {
        let (p, r, t) = frontend(src).expect("frontend");
        let fg = build_func_graph(
            &p,
            &r,
            &t,
            &p.funcs[0],
            &HashMap::new(),
            &BuildOptions::default(),
        );
        (p, r, t, fg)
    }

    fn loc_by_name(fg: &FuncGraph, name: &str) -> LocId {
        fg.graph
            .ids()
            .find(|&id| fg.graph.loc(id).name == name)
            .unwrap_or_else(|| panic!("no location named {name}"))
    }

    #[test]
    fn simple_pointer_flow() {
        let (_, _, _, mut fg) = build_first("func f() { x := 1\n p := &x\n q := p\n q = q }\n");
        solve(&mut fg.graph, &SolveConfig::default());
        let x = loc_by_name(&fg, "x");
        let q = loc_by_name(&fg, "q");
        assert_eq!(points_to(&fg.graph, q), vec![x]);
        assert!(!fg.graph.loc(x).heap_alloc, "nothing escapes");
    }

    #[test]
    fn make_slice_const_vs_dynamic() {
        let (_, _, _, fg) = build_first(
            "func f(n int) { s1 := make([]int, 335)\n s2 := make([]int, n)\n s1[0] = s2[0] }\n",
        );
        let sites: Vec<_> = fg.alloc_sites.values().collect();
        assert_eq!(sites.len(), 2);
        let const_site = sites.iter().find(|s| s.const_size.is_some()).unwrap();
        let dyn_site = sites.iter().find(|s| s.const_size.is_none()).unwrap();
        assert_eq!(const_site.const_size, Some(335 * 8));
        assert!(!fg.graph.loc(const_site.loc).heap_alloc);
        assert!(
            fg.graph.loc(dyn_site.loc).heap_alloc,
            "dynamic size forces heap (fig. 3's make2)"
        );
    }

    #[test]
    fn oversized_const_alloc_forced_to_heap() {
        let (_, _, _, fg) = build_first("func f() { s := make([]int, 100000)\n s[0] = 1 }\n");
        let site = fg.alloc_sites.values().next().unwrap();
        assert!(fg.graph.loc(site.loc).heap_alloc);
    }

    #[test]
    fn indirect_store_escapes_value_and_exposes_pointer() {
        let (_, _, _, mut fg) = build_first(
            "func f() { c := 1\n d := 2\n pc := &c\n pd := &d\n ppd := &pd\n *ppd = pc\n pd2 := *ppd\n pd2 = pd2 }\n",
        );
        solve(&mut fg.graph, &SolveConfig::default());
        let c = loc_by_name(&fg, "c");
        let pd2 = loc_by_name(&fg, "pd2");
        let ppd = loc_by_name(&fg, "ppd");
        // The indirect store exposed ppd and sent pc's value to the heap,
        // so c is heap-allocated (fig. 1)...
        assert!(fg.graph.loc(c).heap_alloc);
        assert!(fg.graph.loc(ppd).exposes);
        // ...and pd2's points-to set, which misses c, is incomplete
        // (table 3's Go column + GoFree's completeness analysis).
        let pts = points_to(&fg.graph, pd2);
        assert!(!pts.contains(&c), "Go's graph misses c");
        assert!(
            fg.graph.loc(pd2).incomplete,
            "GoFree refuses to free pd2 (table 3)"
        );
    }

    #[test]
    fn return_makes_pointers_outlived() {
        let (_, _, _, mut fg) =
            build_first("func f() []int { s := make([]int, 100000)\n return s }\n");
        solve(&mut fg.graph, &SolveConfig::default());
        let s = loc_by_name(&fg, "s");
        assert!(fg.graph.loc(s).outlived, "returned object escapes");
        assert!(!fg.graph.loc(s).to_free());
    }

    #[test]
    fn local_heap_slice_is_freeable() {
        let (_, _, _, mut fg) = build_first("func f(n int) { s := make([]int, n)\n s[0] = 1 }\n");
        solve(&mut fg.graph, &SolveConfig::default());
        let s = loc_by_name(&fg, "s");
        let l = fg.graph.loc(s);
        assert!(l.points_to_heap);
        assert!(!l.incomplete);
        assert!(!l.outlived);
        assert!(l.to_free(), "fig. 3's make2 pattern");
    }

    #[test]
    fn append_adds_heap_content() {
        let (_, _, _, mut fg) = build_first(
            "func f(n int) { var s []int\n for i := 0; i < n; i += 1 { s = append(s, i) }\n s[0] = 1 }\n",
        );
        solve(&mut fg.graph, &SolveConfig::default());
        let s = loc_by_name(&fg, "s");
        assert!(fg.graph.loc(s).points_to_heap);
        assert!(fg.graph.loc(s).to_free(), "append-grown local slice");
    }

    #[test]
    fn map_store_adds_growth_content() {
        let (_, _, _, mut fg) = build_first(
            "func f(n int) { m := make(map[int]int)\n for i := 0; i < n; i += 1 { m[i] = i } }\n",
        );
        solve(&mut fg.graph, &SolveConfig::default());
        let m = loc_by_name(&fg, "m");
        assert!(fg.graph.loc(m).points_to_heap, "growth buckets are heap");
        assert!(fg.graph.loc(m).to_free());
    }

    #[test]
    fn defer_pins_arguments() {
        let (_, _, _, mut fg) =
            build_first("func f(n int) { s := make([]int, n)\n defer print(len(s)) }\n");
        solve(&mut fg.graph, &SolveConfig::default());
        let s = loc_by_name(&fg, "s");
        assert!(fg.graph.loc(s).pinned);
        assert!(!fg.graph.loc(s).to_free());
    }

    #[test]
    fn loop_alloc_bound_to_outer_pointer_heap_allocates() {
        let (_, _, _, mut fg) = build_first(
            "func f(n int) { var keep *int\n for i := 0; i < n; i += 1 { x := i\n keep = &x }\n keep = keep }\n",
        );
        solve(&mut fg.graph, &SolveConfig::default());
        let x = loc_by_name(&fg, "x");
        assert!(
            fg.graph.loc(x).heap_alloc,
            "loop-carried address forces heap (def 4.10 loop rule)"
        );
    }

    #[test]
    fn params_are_incomplete() {
        let (_, _, _, mut fg) = build_first("func f(p *int) { q := p\n q = q }\n");
        solve(&mut fg.graph, &SolveConfig::default());
        let p = loc_by_name(&fg, "p");
        let q = loc_by_name(&fg, "q");
        assert!(fg.graph.loc(p).incomplete);
        assert!(fg.graph.loc(q).incomplete, "flows from an unknown param");
    }

    #[test]
    fn unknown_callee_uses_default_tag() {
        let (_, _, _, mut fg) = build_first(
            "func f(n int) []int { if n == 0 { return make([]int, 1) }\n r := f(n - 1)\n return r }\n",
        );
        solve(&mut fg.graph, &SolveConfig::default());
        let r = loc_by_name(&fg, "r");
        assert!(
            fg.graph.loc(r).incomplete,
            "recursive call gets the conservative default tag"
        );
    }

    #[test]
    fn nested_scopes_fig6() {
        // Fig. 6 of the paper: s1/s2 freeable in their scopes, s3 outlived.
        let src = r#"
func nested(n int) {
    var keep []int
    {
        s1 := make([]int, n)
        s1[0] = 1
        {
            s2 := make([]int, n)
            s2[0] = 2
        }
        {
            s3 := make([]int, n)
            keep = s3
        }
    }
    keep[0] = 3
}
"#;
        let (_, _, _, mut fg) = build_first(src);
        solve(&mut fg.graph, &SolveConfig::default());
        assert!(fg.graph.loc(loc_by_name(&fg, "s1")).to_free());
        assert!(fg.graph.loc(loc_by_name(&fg, "s2")).to_free());
        let s3 = fg.graph.loc(loc_by_name(&fg, "s3"));
        assert!(s3.outlived);
        assert!(!s3.to_free());
    }

    #[test]
    fn struct_literal_value_vs_address() {
        let (_, _, _, fg) = build_first(
            "type P struct { x int }\nfunc f() { v := P{1}\n q := &P{2}\n q.x = v.x }\n",
        );
        // Only the &P{2} creates an allocation site.
        assert_eq!(fg.alloc_sites.len(), 1);
    }
}
