//! Connection-graph escape analysis — the O(N³) baseline of §2.1.2 and
//! table 3.
//!
//! Unlike Go's escape graph, the connection graph tracks indirect stores:
//! `*p = q` propagates `pts(q)` into the contents of every object `p` may
//! point to, discovering flows the cheaper analyses miss. This is a
//! field-insensitive, flow-insensitive Andersen-style inclusion analysis
//! iterated to a fixpoint; a single statement can generate O(N) set
//! inclusions, giving the cubic bound the paper cites.

use std::collections::{BTreeSet, HashMap};

use minigo_syntax::{
    Block, Builtin, Expr, ExprId, ExprKind, Func, Program, Resolution, Stmt, StmtKind, TypeInfo,
    UnOp, VarId,
};

/// A node in the connection graph: a variable's storage or an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// A variable.
    Var(VarId),
    /// An allocation site.
    Alloc(ExprId),
    /// The unknown outside world (call boundaries).
    Unknown,
}

/// Inclusion constraints gathered from the AST.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Constraint {
    /// `dst ⊇ {obj}` — address-of.
    Base { dst: Node, obj: Node },
    /// `dst ⊇ src` — copy.
    Copy { dst: Node, src: Node },
    /// `dst ⊇ pts(o) for o ∈ pts(src)` — load `dst = *src`.
    Load { dst: Node, src: Node },
    /// `pts(o) ⊇ src for o ∈ pts(dst)` — store `*dst = src`.
    Store { dst: Node, src: Node },
}

/// Result of the connection-graph analysis on one function.
#[derive(Debug, Clone)]
pub struct ConnResult {
    pts: HashMap<Node, BTreeSet<Node>>,
    /// Number of fixpoint iterations (complexity experiments read this).
    pub iterations: usize,
}

impl ConnResult {
    /// The points-to set of a variable.
    pub fn points_to(&self, v: VarId) -> BTreeSet<Node> {
        self.pts.get(&Node::Var(v)).cloned().unwrap_or_default()
    }

    /// Whether `v` may point to the unknown outside world.
    pub fn may_point_unknown(&self, v: VarId) -> bool {
        self.points_to(v).contains(&Node::Unknown)
    }
}

/// Runs the connection-graph analysis on `func`.
pub fn analyze_func(
    _program: &Program,
    res: &Resolution,
    _types: &TypeInfo,
    func: &Func,
) -> ConnResult {
    let mut c = Collector {
        res,
        constraints: Vec::new(),
        next_temp: 0,
    };
    // Parameters may point anywhere the caller chose.
    for &p in res.params_of(func.id) {
        c.constraints.push(Constraint::Base {
            dst: Node::Var(p),
            obj: Node::Unknown,
        });
    }
    c.block(&func.body);
    // Returned values flow to the unknown world.
    // (Collected during the walk via Store into Unknown.)

    let mut pts: HashMap<Node, BTreeSet<Node>> = HashMap::new();
    // Unknown points to unknown: loads through it stay unknown.
    pts.entry(Node::Unknown).or_default().insert(Node::Unknown);

    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for con in &c.constraints {
            match con {
                Constraint::Base { dst, obj } => {
                    changed |= pts.entry(*dst).or_default().insert(*obj);
                }
                Constraint::Copy { dst, src } => {
                    let add: Vec<Node> = pts
                        .get(src)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    let d = pts.entry(*dst).or_default();
                    for n in add {
                        changed |= d.insert(n);
                    }
                }
                Constraint::Load { dst, src } => {
                    let objs: Vec<Node> = pts
                        .get(src)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    for o in objs {
                        let add: Vec<Node> = pts
                            .get(&o)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        let d = pts.entry(*dst).or_default();
                        for n in add {
                            changed |= d.insert(n);
                        }
                    }
                }
                Constraint::Store { dst, src } => {
                    let objs: Vec<Node> = pts
                        .get(dst)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    let add: Vec<Node> = pts
                        .get(src)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    for o in objs {
                        let d = pts.entry(o).or_default();
                        for n in &add {
                            changed |= d.insert(*n);
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
        assert!(iterations < 10_000, "connection graph failed to converge");
    }
    ConnResult { pts, iterations }
}

struct Collector<'a> {
    res: &'a Resolution,
    constraints: Vec<Constraint>,
    next_temp: u32,
}

impl<'a> Collector<'a> {
    fn temp(&mut self) -> Node {
        self.next_temp += 1;
        // Temps live in ExprId space far above real ids.
        Node::Alloc(ExprId(u32::MAX - self.next_temp))
    }

    fn block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::VarDecl { names, init, .. } | StmtKind::ShortDecl { names, init } => {
                for (i, _) in names.iter().enumerate() {
                    let Some(v) = self.res.decl_of(stmt.id, i) else {
                        continue;
                    };
                    if init.len() == names.len() {
                        let node = self.eval(&init[i]);
                        self.constraints.push(Constraint::Copy {
                            dst: Node::Var(v),
                            src: node,
                        });
                    } else if !init.is_empty() {
                        // Multi-value call: unknown.
                        self.constraints.push(Constraint::Base {
                            dst: Node::Var(v),
                            obj: Node::Unknown,
                        });
                    }
                }
            }
            StmtKind::Assign { lhs, op, rhs } => {
                if op.is_some() {
                    return;
                }
                if rhs.len() == 1 && lhs.len() > 1 {
                    for l in lhs {
                        self.store_into(l, Node::Unknown);
                    }
                    return;
                }
                for (l, r) in lhs.iter().zip(rhs) {
                    let src = self.eval(r);
                    self.store_into(l, src);
                }
            }
            StmtKind::If { then, els, .. } => {
                self.block(then);
                if let Some(els) = els {
                    self.stmt(els);
                }
            }
            StmtKind::For {
                init, post, body, ..
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                if let Some(post) = post {
                    self.stmt(post);
                }
                self.block(body);
            }
            StmtKind::Return { exprs } => {
                for e in exprs {
                    let n = self.eval(e);
                    self.constraints.push(Constraint::Store {
                        dst: Node::Unknown,
                        src: n,
                    });
                    // The value itself reaches the caller.
                    self.constraints.push(Constraint::Copy {
                        dst: Node::Unknown,
                        src: n,
                    });
                }
            }
            StmtKind::Expr { expr } => {
                self.eval(expr);
            }
            StmtKind::BlockStmt { block } => self.block(block),
            StmtKind::Defer { call } => {
                self.eval(call);
            }
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.eval(subject);
                for case in cases {
                    self.block(&case.body);
                }
                if let Some(default) = default {
                    self.block(default);
                }
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::Free { .. } => {}
        }
    }

    /// Assignment into an lvalue.
    fn store_into(&mut self, lv: &Expr, src: Node) {
        match &lv.kind {
            ExprKind::Ident(_) => {
                if let Some(v) = self.res.def_of(lv.id) {
                    self.constraints.push(Constraint::Copy {
                        dst: Node::Var(v),
                        src,
                    });
                }
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => {
                let p = self.eval(operand);
                let t = self.temp();
                self.constraints.push(Constraint::Copy { dst: t, src });
                self.constraints.push(Constraint::Store { dst: p, src: t });
            }
            ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => {
                // Field-insensitive: storing into x.f stores into x; storing
                // into p.f / s[i] stores through the pointer.
                let b = self.eval_address_or_value(base);
                let t = self.temp();
                self.constraints.push(Constraint::Copy { dst: t, src });
                self.constraints.push(Constraint::Store { dst: b, src: t });
            }
            _ => {}
        }
    }

    /// For store bases: a variable acts as a pointer to itself when it is a
    /// struct value (field-insensitivity) and as a plain pointer otherwise.
    fn eval_address_or_value(&mut self, e: &Expr) -> Node {
        match &e.kind {
            ExprKind::Ident(_) => {
                if let Some(v) = self.res.def_of(e.id) {
                    let t = self.temp();
                    // t points at v's storage and holds v's value.
                    self.constraints.push(Constraint::Base {
                        dst: t,
                        obj: Node::Var(v),
                    });
                    self.constraints.push(Constraint::Copy {
                        dst: t,
                        src: Node::Var(v),
                    });
                    t
                } else {
                    Node::Unknown
                }
            }
            _ => self.eval(e),
        }
    }

    /// Evaluates an expression to a node holding its value.
    fn eval(&mut self, e: &Expr) -> Node {
        match &e.kind {
            ExprKind::Ident(_) => self
                .res
                .def_of(e.id)
                .map(Node::Var)
                .unwrap_or(Node::Unknown),
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Nil => {
                self.temp()
            }
            ExprKind::Unary { op, operand } => match op {
                UnOp::Addr => {
                    let t = self.temp();
                    match &operand.kind {
                        ExprKind::Ident(_) => {
                            if let Some(v) = self.res.def_of(operand.id) {
                                self.constraints.push(Constraint::Base {
                                    dst: t,
                                    obj: Node::Var(v),
                                });
                            }
                        }
                        ExprKind::StructLit { fields, .. } => {
                            let obj = Node::Alloc(operand.id);
                            self.constraints.push(Constraint::Base { dst: t, obj });
                            for f in fields {
                                let fv = self.eval(f);
                                self.constraints
                                    .push(Constraint::Copy { dst: obj, src: fv });
                            }
                        }
                        ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => {
                            // &x.f ≈ &x (field-insensitive); &s[i] ≈ s.
                            let b = self.eval_address_or_value(base);
                            self.constraints.push(Constraint::Copy { dst: t, src: b });
                        }
                        _ => {
                            let v = self.eval(operand);
                            self.constraints.push(Constraint::Copy { dst: t, src: v });
                        }
                    }
                    t
                }
                UnOp::Deref => {
                    let p = self.eval(operand);
                    let t = self.temp();
                    self.constraints.push(Constraint::Load { dst: t, src: p });
                    t
                }
                UnOp::Neg | UnOp::Not => self.temp(),
            },
            ExprKind::Binary { .. } => self.temp(),
            ExprKind::Field { base, .. } => {
                // Value field of a struct value: the struct's node
                // (field-insensitive); through a pointer: a load.
                match &base.kind {
                    ExprKind::Ident(_) => self.eval(base),
                    _ => {
                        let b = self.eval(base);
                        let t = self.temp();
                        self.constraints.push(Constraint::Load { dst: t, src: b });
                        t
                    }
                }
            }
            ExprKind::Index { base, .. } => {
                let b = self.eval(base);
                let t = self.temp();
                self.constraints.push(Constraint::Load { dst: t, src: b });
                t
            }
            ExprKind::SliceExpr { base, .. } => self.eval(base),
            ExprKind::Call { args, .. } => {
                for a in args {
                    let n = self.eval(a);
                    self.constraints.push(Constraint::Store {
                        dst: Node::Unknown,
                        src: n,
                    });
                    self.constraints.push(Constraint::Copy {
                        dst: Node::Unknown,
                        src: n,
                    });
                }
                Node::Unknown
            }
            ExprKind::Builtin { kind, args, .. } => match kind {
                Builtin::Make | Builtin::New => {
                    let t = self.temp();
                    self.constraints.push(Constraint::Base {
                        dst: t,
                        obj: Node::Alloc(e.id),
                    });
                    t
                }
                Builtin::Append => {
                    let s = self.eval(&args[0]);
                    let v = self.eval(&args[1]);
                    self.constraints.push(Constraint::Store { dst: s, src: v });
                    s
                }
                _ => {
                    for a in args {
                        self.eval(a);
                    }
                    self.temp()
                }
            },
            ExprKind::StructLit { fields, .. } => {
                let t = self.temp();
                for f in fields {
                    let fv = self.eval(f);
                    self.constraints.push(Constraint::Copy { dst: t, src: fv });
                }
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_syntax::frontend;

    fn run(src: &str) -> (Resolution, ConnResult) {
        let (p, r, t) = frontend(src).expect("frontend");
        let func = p.funcs.last().expect("has function").clone();
        let cr = analyze_func(&p, &r, &t, &func);
        (r, cr)
    }

    fn var_named(res: &Resolution, name: &str) -> VarId {
        VarId(
            res.vars()
                .iter()
                .position(|v| v.name == name)
                .unwrap_or_else(|| panic!("no var {name}")) as u32,
        )
    }

    /// Table 3's connection-graph column: PointsTo(pd2) = {c, d} — the
    /// indirect store *ppd = pc is tracked.
    #[test]
    fn tracks_indirect_stores_fig1() {
        let (r, cr) = run(
            "func f() { c := 1\n d := 2\n pc := &c\n pd := &d\n ppd := &pd\n *ppd = pc\n pd2 := *ppd\n pd2 = pd2 }\n",
        );
        let pts = cr.points_to(var_named(&r, "pd2"));
        let c = Node::Var(var_named(&r, "c"));
        let d = Node::Var(var_named(&r, "d"));
        assert!(pts.contains(&c), "connection graph finds c: {pts:?}");
        assert!(pts.contains(&d), "and d: {pts:?}");
    }

    #[test]
    fn simple_chain() {
        let (r, cr) = run("func f() { x := 1\n p := &x\n q := p\n q = q }\n");
        let pts = cr.points_to(var_named(&r, "q"));
        assert!(pts.contains(&Node::Var(var_named(&r, "x"))));
        assert!(!pts.contains(&Node::Unknown));
    }

    #[test]
    fn load_through_double_pointer() {
        let (r, cr) = run("func f() { x := 1\n p := &x\n pp := &p\n q := *pp\n q = q }\n");
        let pts = cr.points_to(var_named(&r, "q"));
        assert!(pts.contains(&Node::Var(var_named(&r, "x"))));
    }

    #[test]
    fn params_point_to_unknown() {
        let (r, cr) = run("func f(p *int) { q := p\n q = q }\n");
        assert!(cr.may_point_unknown(var_named(&r, "q")));
    }

    #[test]
    fn iterations_reported() {
        let (_, cr) = run("func f() { x := 1\n p := &x\n *p = 2 }\n");
        assert!(cr.iterations >= 1);
    }
}
