//! Baseline escape analyses for the paper's table 3 comparison.
//!
//! | Analysis | Complexity | Omitted dataflow |
//! |---|---|---|
//! | [`fast`] | O(N) | all dereference-level flow |
//! | Go escape graph (the main crate) | O(N²) | indirect stores |
//! | [`conn`] | O(N³) | none |

pub mod conn;
pub mod fast;
