//! Fast Escape Analysis (Gay & Steensgaard, 2000) — the O(N) baseline of
//! §2.1.2 and table 3.
//!
//! The analysis "only propagates escape properties among references and
//! does not distinguish among new-ed objects": variables copied into each
//! other are merged into equivalence classes (union-find); address-of adds
//! a pointee to a class; *any* dereference — loads, indexed loads, field
//! loads through pointers, indirect stores — is untracked, making the
//! affected points-to set incomplete and (for stores and escapes) marking
//! the class as escaping. An object is stack-allocated iff the reference it
//! is immediately bound to at its allocation does not escape.

use std::collections::{BTreeSet, HashMap};

use minigo_syntax::{
    Block, Expr, ExprId, ExprKind, Func, Program, Resolution, Stmt, StmtKind, TypeInfo, UnOp, VarId,
};

/// What a class may point to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pointee {
    /// The storage of a variable (`&x`).
    Var(VarId),
    /// The object created by an allocation expression.
    Alloc(ExprId),
}

/// Result of the fast analysis on one function.
#[derive(Debug, Clone)]
pub struct FastResult {
    parent: HashMap<VarId, VarId>,
    pointees: HashMap<VarId, BTreeSet<Pointee>>,
    escaped: HashMap<VarId, bool>,
    incomplete: HashMap<VarId, bool>,
}

impl FastResult {
    fn find(&self, v: VarId) -> VarId {
        let mut cur = v;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    /// The points-to set of `v`'s class. Incomplete sets (touched by any
    /// dereference) are empty, as in table 3's Fast column.
    pub fn points_to(&self, v: VarId) -> BTreeSet<Pointee> {
        let root = self.find(v);
        if self.incomplete.get(&root).copied().unwrap_or(false) {
            return BTreeSet::new();
        }
        self.pointees.get(&root).cloned().unwrap_or_default()
    }

    /// Whether the analysis lost track of `v`'s points-to set.
    pub fn is_incomplete(&self, v: VarId) -> bool {
        let root = self.find(v);
        self.incomplete.get(&root).copied().unwrap_or(false)
    }

    /// Whether `v`'s class escapes (heap allocation required for objects
    /// bound to it).
    pub fn escapes(&self, v: VarId) -> bool {
        let root = self.find(v);
        self.escaped.get(&root).copied().unwrap_or(false)
    }
}

/// Runs the fast analysis on `func`.
pub fn analyze_func(
    _program: &Program,
    res: &Resolution,
    _types: &TypeInfo,
    func: &Func,
) -> FastResult {
    let mut a = Fast {
        res,
        out: FastResult {
            parent: HashMap::new(),
            pointees: HashMap::new(),
            escaped: HashMap::new(),
            incomplete: HashMap::new(),
        },
    };
    for (i, info) in res.vars().iter().enumerate() {
        if info.func == func.id {
            let v = VarId(i as u32);
            a.out.parent.insert(v, v);
            // Unknown callers: parameter points-to sets are incomplete.
            if info.kind == minigo_syntax::VarKind::Param {
                a.out.incomplete.insert(v, true);
            }
        }
    }
    // Results escape.
    for &r in res.results_of(func.id) {
        a.out.escaped.insert(r, true);
    }
    a.block(&func.body);
    // Normalize: push flags up to the current roots.
    let vars: Vec<VarId> = a.out.parent.keys().copied().collect();
    for v in vars {
        let root = a.out.find(v);
        if a.out.escaped.get(&v).copied().unwrap_or(false) {
            a.out.escaped.insert(root, true);
        }
        if a.out.incomplete.get(&v).copied().unwrap_or(false) {
            a.out.incomplete.insert(root, true);
        }
    }
    a.out
}

struct Fast<'a> {
    res: &'a Resolution,
    out: FastResult,
}

impl<'a> Fast<'a> {
    fn union(&mut self, a: VarId, b: VarId) {
        let ra = self.out.find(a);
        let rb = self.out.find(b);
        if ra == rb {
            return;
        }
        self.out.parent.insert(rb, ra);
        let pb = self.out.pointees.remove(&rb).unwrap_or_default();
        self.out.pointees.entry(ra).or_default().extend(pb);
        if self.out.escaped.get(&rb).copied().unwrap_or(false) {
            self.out.escaped.insert(ra, true);
        }
        if self.out.incomplete.get(&rb).copied().unwrap_or(false) {
            self.out.incomplete.insert(ra, true);
        }
    }

    fn mark_escaped(&mut self, v: VarId) {
        let r = self.out.find(v);
        self.out.escaped.insert(r, true);
    }

    fn mark_incomplete(&mut self, v: VarId) {
        let r = self.out.find(v);
        self.out.incomplete.insert(r, true);
    }

    fn block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::VarDecl { names, init, .. } | StmtKind::ShortDecl { names, init } => {
                for (i, _) in names.iter().enumerate() {
                    if let Some(v) = self.res.decl_of(stmt.id, i) {
                        match init.get(i.min(init.len().saturating_sub(1))) {
                            Some(e) if init.len() == names.len() => self.bind(v, e),
                            Some(_) | None => self.mark_incomplete(v), // multi-value call
                        }
                    }
                }
            }
            StmtKind::Assign { lhs, op, rhs } => {
                if op.is_some() {
                    return;
                }
                for (l, r) in lhs.iter().zip(rhs) {
                    match &l.kind {
                        ExprKind::Ident(_) => {
                            if let Some(v) = self.res.def_of(l.id) {
                                self.bind(v, r);
                            }
                        }
                        _ => {
                            // Indirect store: untracked; the stored value
                            // escapes.
                            self.escape_expr(r);
                        }
                    }
                }
                if rhs.len() == 1 && lhs.len() > 1 {
                    for l in lhs {
                        if let Some(v) = self.res.def_of(l.id) {
                            self.mark_incomplete(v);
                        }
                    }
                }
            }
            StmtKind::If { then, els, .. } => {
                self.block(then);
                if let Some(els) = els {
                    self.stmt(els);
                }
            }
            StmtKind::For {
                init, post, body, ..
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                if let Some(post) = post {
                    self.stmt(post);
                }
                self.block(body);
            }
            StmtKind::Return { exprs } => {
                for e in exprs {
                    self.escape_expr(e);
                }
            }
            StmtKind::Expr { expr } => self.escape_args_of_calls(expr),
            StmtKind::BlockStmt { block } => self.block(block),
            StmtKind::Defer { call } => self.escape_args_of_calls(call),
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.escape_args_of_calls(subject);
                for case in cases {
                    self.block(&case.body);
                }
                if let Some(default) = default {
                    self.block(default);
                }
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::Free { .. } => {}
        }
    }

    /// `v = e`.
    fn bind(&mut self, v: VarId, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(_) => {
                if let Some(src) = self.res.def_of(e.id) {
                    self.union(v, src);
                }
            }
            ExprKind::Unary {
                op: UnOp::Addr,
                operand,
            } => match &operand.kind {
                ExprKind::Ident(_) => {
                    if let Some(x) = self.res.def_of(operand.id) {
                        let r = self.out.find(v);
                        self.out
                            .pointees
                            .entry(r)
                            .or_default()
                            .insert(Pointee::Var(x));
                    }
                }
                ExprKind::StructLit { .. } => {
                    let r = self.out.find(v);
                    self.out
                        .pointees
                        .entry(r)
                        .or_default()
                        .insert(Pointee::Alloc(operand.id));
                }
                _ => self.mark_incomplete(v),
            },
            ExprKind::Builtin {
                kind: minigo_syntax::Builtin::Make | minigo_syntax::Builtin::New,
                ..
            } => {
                let r = self.out.find(v);
                self.out
                    .pointees
                    .entry(r)
                    .or_default()
                    .insert(Pointee::Alloc(e.id));
            }
            // Any dereference-level flow is untracked.
            ExprKind::Unary {
                op: UnOp::Deref, ..
            }
            | ExprKind::SliceExpr { .. }
            | ExprKind::Index { .. }
            | ExprKind::Field { .. }
            | ExprKind::Call { .. }
            | ExprKind::Builtin { .. } => self.mark_incomplete(v),
            _ => {}
        }
    }

    /// The value of `e` escapes.
    fn escape_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(_) => {
                if let Some(v) = self.res.def_of(e.id) {
                    self.mark_escaped(v);
                }
            }
            ExprKind::Unary { operand, .. } => self.escape_expr(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.escape_expr(lhs);
                self.escape_expr(rhs);
            }
            ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => self.escape_expr(base),
            ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } => {
                for a in args {
                    self.escape_expr(a);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.escape_expr(f);
                }
            }
            _ => {}
        }
    }

    fn escape_args_of_calls(&mut self, e: &Expr) {
        if let ExprKind::Call { args, .. } = &e.kind {
            for a in args {
                self.escape_expr(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_syntax::frontend;

    fn run(src: &str) -> (Program, Resolution, FastResult) {
        let (p, r, t) = frontend(src).expect("frontend");
        let func = p.funcs.last().expect("has function").clone();
        let fr = analyze_func(&p, &r, &t, &func);
        (p, r, fr)
    }

    fn var_named(res: &Resolution, name: &str) -> VarId {
        VarId(
            res.vars()
                .iter()
                .position(|v| v.name == name)
                .unwrap_or_else(|| panic!("no var {name}")) as u32,
        )
    }

    #[test]
    fn direct_address_tracked() {
        let (_, r, fr) = run("func f() { x := 1\n p := &x\n q := p\n q = q }\n");
        let x = var_named(&r, "x");
        let q = var_named(&r, "q");
        assert_eq!(fr.points_to(q), BTreeSet::from([Pointee::Var(x)]));
        assert!(!fr.escapes(q));
    }

    #[test]
    fn any_deref_loses_points_to() {
        // Table 3's Fast column: pd2 = *ppd gives the empty set.
        let (_, r, fr) = run(
            "func f() { c := 1\n d := 2\n pc := &c\n pd := &d\n ppd := &pd\n *ppd = pc\n pd2 := *ppd\n pd2 = pd2 }\n",
        );
        let pd2 = var_named(&r, "pd2");
        assert!(fr.is_incomplete(pd2));
        assert!(fr.points_to(pd2).is_empty());
        // pc escaped through the untracked indirect store.
        let pc = var_named(&r, "pc");
        assert!(fr.escapes(pc));
    }

    #[test]
    fn returned_references_escape() {
        let (_, r, fr) = run("func f(n int) []int { s := make([]int, n)\n return s }\n");
        let s = var_named(&r, "s");
        assert!(fr.escapes(s));
    }

    #[test]
    fn copies_merge_escape_state() {
        let (_, r, fr) = run(
            "func g(s []int) {}\nfunc f(n int) { a := make([]int, n)\n b := a\n var sink *[]int\n *sink = b }\n",
        );
        let a = var_named(&r, "a");
        assert!(fr.escapes(a), "escape flows through the b = a copy");
    }

    #[test]
    fn params_are_incomplete() {
        let (_, r, fr) = run("func f(p *int) { q := p\n q = q }\n");
        assert!(fr.is_incomplete(var_named(&r, "q")));
    }
}
