//! Empirical complexity checks for the escape analysis: the paper's core
//! algorithmic claim is that GoFree keeps Go's O(N²) propagation. We pin
//! the *work counters* (walks and relaxations), which are deterministic,
//! rather than wall time.

use std::collections::HashMap;

use minigo_escape::{analyze, build_func_graph, solve, AnalyzeOptions, BuildOptions, SolveConfig};
use minigo_syntax::frontend;

/// A straight-line pointer-heavy function with `k` statements.
fn chain_program(k: usize) -> String {
    let mut body = String::from("func big(n int) int {\n    x0 := n\n    p0 := &x0\n");
    for i in 1..k {
        body.push_str(&format!("    x{i} := x{} + 1\n    p{i} := &x{i}\n", i - 1));
        if i % 3 == 0 {
            body.push_str(&format!("    *p{} = x{i}\n", i - 1));
        }
    }
    body.push_str(&format!(
        "    return x{}\n}}\nfunc main() {{ print(big(1)) }}\n",
        k - 1
    ));
    body
}

fn solve_counters(k: usize) -> (usize, usize, usize, usize) {
    let src = chain_program(k);
    let (program, res, types) = frontend(&src).expect("compiles");
    let func = program.func("big").unwrap().clone();
    let mut fg = build_func_graph(
        &program,
        &res,
        &types,
        &func,
        &HashMap::new(),
        &BuildOptions::default(),
    );
    let n = fg.graph.len();
    let stats = solve(&mut fg.graph, &SolveConfig::default());
    (n, stats.walks, stats.relaxations, stats.passes)
}

#[test]
fn walks_scale_linearly_with_locations() {
    // walks ≈ passes × N (+ requeues bounded by constant-height lattices):
    // doubling N should ~double walks, not quadruple them.
    let (n1, w1, _, p1) = solve_counters(100);
    let (n2, w2, _, p2) = solve_counters(200);
    assert!(n2 > n1 * 2 - 20 && n2 < n1 * 2 + 20, "{n1} vs {n2}");
    let ratio = w2 as f64 / w1 as f64;
    assert!(
        ratio < 3.0,
        "walks grew superlinearly: {w1} -> {w2} (x{ratio:.2})"
    );
    assert!(p1 <= 6 && p2 <= 6, "passes stay constant: {p1}, {p2}");
}

#[test]
fn relaxations_bounded_by_n_squared() {
    for k in [50usize, 150] {
        let (n, _, relax, _) = solve_counters(k);
        // Each walk is O(E) with constant revisits; across O(N) walks the
        // total must stay well under N² for sparse graphs.
        assert!(
            relax < n * n,
            "k={k}: {relax} relaxations exceeds N²={}",
            n * n
        );
    }
}

#[test]
fn gofree_work_tracks_go_within_constant() {
    let src = chain_program(150);
    let (program, res, types) = frontend(&src).expect("compiles");
    let go = analyze(&program, &res, &types, &AnalyzeOptions::go());
    let gofree = analyze(&program, &res, &types, &AnalyzeOptions::default());
    let ratio = gofree.stats.solve.relaxations as f64 / go.stats.solve.relaxations.max(1) as f64;
    assert!(
        ratio < 4.0,
        "GoFree must stay within a small constant of Go's work, got x{ratio:.2}"
    );
}

#[test]
fn dense_alias_cliques_converge() {
    // All-to-all copies: the worst case for the walk queue.
    let mut body = String::from("func clique() int {\n    x := 1\n    p0 := &x\n");
    for i in 1..20 {
        body.push_str(&format!("    p{i} := p{}\n", i - 1));
    }
    for i in 0..20 {
        for j in 0..20 {
            if i != j && (i + j) % 5 == 0 {
                body.push_str(&format!("    p{i} = p{j}\n"));
            }
        }
    }
    body.push_str("    return *p19\n}\nfunc main() { print(clique()) }\n");
    let (program, res, types) = frontend(&body).expect("compiles");
    let func = program.func("clique").unwrap().clone();
    let mut fg = build_func_graph(
        &program,
        &res,
        &types,
        &func,
        &HashMap::new(),
        &BuildOptions::default(),
    );
    let stats = solve(&mut fg.graph, &SolveConfig::default());
    assert!(
        stats.passes <= 6,
        "clique converged in {} passes",
        stats.passes
    );
}
