//! Properties of the service-mode traffic harness (PR 10):
//!
//! * every service observable — latency/service-time/queue histograms,
//!   exact quantiles, minor/major pause histograms, heap high-water
//!   marks, checksum, total time — is **bit-identical** across the two
//!   VM engines, both bytecode opt levels, and `--jobs 1/2`, over all
//!   three arrival distributions;
//! * `Trace::reconcile` stays field-exact with per-request spans in the
//!   stream, and the chrome export renders them;
//! * observability is invisible: tracing on/off changes no stat;
//! * the GC-off setting records zero pauses, and the GoFree setting
//!   frees bytes the plain-Go run leaves to the collector;
//! * arrival schedules are deterministic per seed and the burst shape
//!   queues harder than fixed-rate at the same offered load.

use gofree::{
    chrome_trace_json, compile, run_service, service_gctrace_lines, service_summary, Arrival,
    CollectorKind, CompileOptions, Compiled, OptLevel, RunConfig, ServiceConfig, ServiceReport,
    ServiceStats, Setting, VmEngine,
};
use gofree_workloads::service::scenarios;
use gofree_workloads::Scale;

const REQUESTS: usize = 400;
const RPS: u64 = 2_000;

fn svc_cfg(arrival: Arrival) -> ServiceConfig {
    ServiceConfig {
        requests: REQUESTS,
        rps: RPS,
        arrival,
    }
}

/// Deterministic run config with a tight GC trigger so even test-scale
/// request counts see GC cycles.
fn run_cfg(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        min_heap: 64 * 1024,
        ..RunConfig::deterministic(seed)
    }
}

fn run(
    compiled: &Compiled,
    setting: Setting,
    cfg: &RunConfig,
    svc: &ServiceConfig,
) -> ServiceReport {
    run_service(compiled, setting, cfg, svc).expect("service run succeeds")
}

/// The full observable surface the bit-identity contract covers
/// (metrics via their Debug form — `Metrics` has no `PartialEq`).
fn fingerprint(r: &ServiceReport) -> (ServiceStats, String, u64, String) {
    (
        r.stats.clone(),
        r.report.output.clone(),
        r.report.time,
        format!("{:?}", r.report.metrics),
    )
}

#[test]
fn observables_identical_across_engines_opts_and_jobs() {
    for w in scenarios(Scale::Test) {
        for setting in [Setting::Go, Setting::GoFree] {
            let compiled =
                compile(&w.source, &setting.compile_options()).expect("service program compiles");
            for arrival in Arrival::all() {
                let svc = svc_cfg(arrival);
                let base = run(&compiled, setting, &run_cfg(3), &svc);
                assert_eq!(base.stats.requests, REQUESTS as u64);
                for (engine, opt, jobs) in [
                    (VmEngine::TreeWalk, OptLevel::Full, 1),
                    (VmEngine::Bytecode, OptLevel::Off, 1),
                    (VmEngine::Bytecode, OptLevel::Full, 2),
                ] {
                    let cfg = RunConfig {
                        engine,
                        opt,
                        jobs,
                        ..run_cfg(3)
                    };
                    let other = run(&compiled, setting, &cfg, &svc);
                    assert_eq!(
                        fingerprint(&base),
                        fingerprint(&other),
                        "{}/{setting}/{arrival}: {engine:?}/{opt:?}/jobs{jobs} diverged",
                        w.name
                    );
                }
            }
        }
    }
}

#[test]
fn observables_identical_across_collectors_modulo_pause_split() {
    // The two collector backends legitimately pace GC differently, so
    // stats differ — but each backend individually must stay engine-
    // invariant, and the gen backend must attribute pauses to both
    // generations on a workload with a long-lived working set.
    let w = scenarios(Scale::Test).remove(0);
    let compiled = compile(&w.source, &Setting::GoFree.compile_options()).expect("kv compiles");
    for collector in CollectorKind::all() {
        let cfg = RunConfig {
            collector,
            // Above the nursery budget, so the gen backend validates.
            min_heap: 128 * 1024,
            ..run_cfg(5)
        };
        let svc = svc_cfg(Arrival::Poisson);
        let tree = run(&compiled, Setting::GoFree, &cfg, &svc);
        let byte = run(
            &compiled,
            Setting::GoFree,
            &RunConfig {
                engine: VmEngine::Bytecode,
                ..cfg.clone()
            },
            &svc,
        );
        assert_eq!(
            fingerprint(&tree),
            fingerprint(&byte),
            "collector {collector:?} diverged across engines"
        );
        match collector {
            CollectorKind::Go => assert_eq!(
                tree.stats.pause_minor.count(),
                0,
                "mark-sweep backend has no minor cycles"
            ),
            CollectorKind::Generational => assert!(
                tree.stats.pause_minor.count() > 0,
                "gen backend saw no minor pauses"
            ),
        }
    }
}

#[test]
fn schedules_deterministic_and_burst_queues_harder() {
    let fixed = svc_cfg(Arrival::Fixed);
    let burst = svc_cfg(Arrival::Burst);
    assert_eq!(fixed.schedule(9), fixed.schedule(9));
    assert_ne!(
        ServiceConfig {
            arrival: Arrival::Poisson,
            ..fixed.clone()
        }
        .schedule(9),
        ServiceConfig {
            arrival: Arrival::Poisson,
            ..fixed.clone()
        }
        .schedule(10),
        "poisson schedule ignores the seed"
    );

    let w = scenarios(Scale::Test).remove(2); // rotate: heaviest handler
    let compiled = compile(&w.source, &Setting::Go.compile_options()).expect("rotate compiles");
    let f = run(&compiled, Setting::Go, &run_cfg(4), &fixed);
    let b = run(&compiled, Setting::Go, &run_cfg(4), &burst);
    assert!(
        b.stats.queue_q.max >= f.stats.queue_q.max,
        "spike did not raise worst-case queueing ({} < {})",
        b.stats.queue_q.max,
        f.stats.queue_q.max
    );
    assert!(
        b.stats.latency_q.p999 >= f.stats.latency_q.p999,
        "spike did not raise p999"
    );
}

#[test]
fn tracing_is_invisible_and_reconciles_with_request_spans() {
    for w in scenarios(Scale::Test) {
        let compiled = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        let svc = svc_cfg(Arrival::Burst);
        let plain = run(&compiled, Setting::GoFree, &run_cfg(6), &svc);
        let traced_cfg = RunConfig {
            trace: true,
            ..run_cfg(6)
        };
        let traced = run(&compiled, Setting::GoFree, &traced_cfg, &svc);
        assert_eq!(
            fingerprint(&plain),
            fingerprint(&traced),
            "{}: tracing perturbed the run",
            w.name
        );

        let trace = traced.report.trace.as_ref().expect("trace captured");
        let spans = trace
            .events
            .iter()
            .filter(|e| matches!(e, gofree::TraceEvent::Request { .. }))
            .count();
        assert_eq!(spans, REQUESTS, "{}: one span per request", w.name);
        trace
            .reconcile(&traced.report.metrics)
            .unwrap_or_else(|e| panic!("{}: reconcile with spans: {e}", w.name));

        let chrome = chrome_trace_json(trace, &compiled.phase_times);
        assert!(
            chrome.contains("\"cat\":\"service\"") && chrome.contains("\"request 0\""),
            "{}: chrome export lacks request spans",
            w.name
        );
    }
}

#[test]
fn settings_tell_the_papers_story() {
    let w = scenarios(Scale::Test).remove(2); // rotate: the phase-change scenario
    let svc = svc_cfg(Arrival::Burst);
    let cfg = run_cfg(7);

    let go = compile(&w.source, &Setting::Go.compile_options()).expect("compiles");
    let gofree = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");

    let r_go = run(&go, Setting::Go, &cfg, &svc);
    let r_free = run(&gofree, Setting::GoFree, &cfg, &svc);
    let r_off = run(&go, Setting::GoGcOff, &cfg, &svc);

    // Same requests, same answers.
    assert_eq!(r_go.stats.checksum, r_free.stats.checksum);
    assert_eq!(r_go.stats.checksum, r_off.stats.checksum);

    // GC off: no pauses, monotone heap.
    assert_eq!(r_off.stats.gcs(), 0);
    assert_eq!(r_off.report.metrics.gcs, 0);
    assert!(r_off.stats.heap_hwm >= r_go.stats.heap_hwm);

    // GoFree reclaims explicitly and collects no more often than Go.
    assert!(r_free.report.metrics.freed_bytes > 0);
    assert!(r_free.stats.gcs() <= r_go.stats.gcs());

    // Renderers cover the stats without panicking.
    let summary = service_summary(&r_free.stats);
    assert!(summary.contains("p999") && summary.contains("gc pauses"));
    let gctrace = service_gctrace_lines(&r_free.stats);
    assert!(gctrace.starts_with("service:") && gctrace.contains("latency: p50"));
}

#[test]
fn report_json_carries_service_section() {
    let w = scenarios(Scale::Test).remove(0);
    let compiled = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
    let r = run(
        &compiled,
        Setting::GoFree,
        &run_cfg(8),
        &svc_cfg(Arrival::Fixed),
    );
    let json = gofree::service_report_json(&r.report, Some(&r.stats));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    for needle in [
        "\"schema\":\"gofree-report/5\"",
        "\"service\":{\"requests\":400",
        "\"latency\":{\"p50\":",
        "\"pause_major_buckets\":[",
        "\"heap_hwm\":",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
    // Batch exports stamp the same schema with a null service section.
    assert!(gofree::report_json(&r.report).contains("\"service\":null"));
}

#[test]
fn missing_contract_functions_error_cleanly() {
    let compiled =
        compile("func main() { print(1) }\n", &CompileOptions::default()).expect("compiles");
    let err = run_service(
        &compiled,
        Setting::GoFree,
        &run_cfg(0),
        &svc_cfg(Arrival::Fixed),
    )
    .expect_err("no setup()");
    assert!(err.to_string().contains("no func setup"), "got: {err}");
}
