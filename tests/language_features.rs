//! Tests for the extended language features: `switch` statements and
//! reslicing (`s[a:b]`), checked through the whole pipeline — parsing,
//! printing, escape analysis, instrumentation, and execution under both
//! compilers.

use gofree::{compile, compile_and_run, CompileOptions, RunConfig, Setting};

fn run_both(src: &str) -> String {
    let cfg = RunConfig::deterministic(11);
    let go = compile_and_run(src, Setting::Go, &cfg).expect("go run");
    let gofree = compile_and_run(src, Setting::GoFree, &cfg).expect("gofree run");
    assert_eq!(go.output, gofree.output, "settings must agree");
    go.output
}

#[test]
fn switch_selects_matching_case() {
    let out = run_both(
        "func classify(n int) string { switch n % 3 {\ncase 0:\n return \"zero\"\ncase 1, 4:\n return \"one\"\ndefault:\n return \"two\"\n} }\nfunc main() { print(classify(9), classify(4), classify(5)) }\n",
    );
    assert_eq!(out, "zero one two\n");
}

#[test]
fn switch_without_default_falls_through_silently() {
    let out = run_both(
        "func main() { x := 0\n switch 7 {\ncase 1:\n x = 1\ncase 2:\n x = 2\n}\n print(x) }\n",
    );
    assert_eq!(out, "0\n");
}

#[test]
fn switch_on_strings() {
    let out = run_both(
        "func main() { s := \"go\"\n switch s {\ncase \"rust\":\n print(1)\ncase \"go\":\n print(2)\ndefault:\n print(3)\n} }\n",
    );
    assert_eq!(out, "2\n");
}

#[test]
fn switch_break_exits_switch_not_loop() {
    let out = run_both(
        "func main() { total := 0\n for i := 0; i < 5; i += 1 { switch i % 2 {\ncase 0:\n break\ncase 1:\n total += i\n}\n total += 100 }\n print(total) }\n",
    );
    // All 5 iterations add 100; odd i (1, 3) add i.
    assert_eq!(out, "504\n");
}

#[test]
fn switch_case_bodies_are_scopes_with_frees() {
    // A heap slice declared inside a case body gets its tcfree inside
    // that arm.
    let src = "func main() { n := 100\n switch n % 2 {\ncase 0:\n s := make([]int, n)\n s[0] = 1\n print(s[0])\ndefault:\n print(9)\n} }\n";
    let compiled = compile(src, &CompileOptions::default()).expect("compiles");
    assert!(
        compiled.instrumented_source().contains("tcfree(s)"),
        "{}",
        compiled.instrumented_source()
    );
    let out = run_both(src);
    assert_eq!(out, "1\n");
}

#[test]
fn reslice_shares_backing_array() {
    let out = run_both(
        "func main() { s := make([]int, 6)\n for i := 0; i < 6; i += 1 { s[i] = i * 10 }\n t := s[2:5]\n t[0] = 777\n print(s[2], t[0], len(t), cap(t) >= 4) }\n",
    );
    assert_eq!(out, "777 777 3 true\n");
}

#[test]
fn reslice_defaults_and_chaining() {
    let out = run_both(
        "func main() { s := make([]int, 8)\n for i := 0; i < 8; i += 1 { s[i] = i }\n a := s[:4]\n b := s[4:]\n c := s[:]\n d := b[1:3]\n print(len(a), len(b), len(c), d[0], d[1]) }\n",
    );
    assert_eq!(out, "4 4 8 5 6\n");
}

#[test]
fn reslice_up_to_cap_is_legal() {
    let out = run_both(
        "func main() { s := make([]int, 2, 10)\n t := s[0:7]\n t[6] = 42\n print(len(s), len(t), t[6]) }\n",
    );
    assert_eq!(out, "2 7 42\n");
}

#[test]
fn reslice_beyond_cap_fails() {
    let src = "func main() { s := make([]int, 2, 4)\n t := s[0:9]\n print(len(t)) }\n";
    let cfg = RunConfig::deterministic(0);
    let err = compile_and_run(src, Setting::Go, &cfg).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn reslice_aliasing_blocks_unsound_frees() {
    // t aliases s's array; s lives longer, so freeing t at its inner
    // scope would be unsound — the analysis must refuse.
    let src = "func main() { n := 50\n s := make([]int, n)\n { t := s[10:20]\n t[0] = 5 }\n print(s[10]) }\n";
    let compiled = compile(src, &CompileOptions::default()).expect("compiles");
    assert!(
        !compiled.instrumented_source().contains("tcfree(t)"),
        "t aliases s and must not be freed early:\n{}",
        compiled.instrumented_source()
    );
    assert_eq!(run_both(src), "5\n");
}

#[test]
fn reslice_of_freeable_local_still_freed_at_scope_end() {
    // Both s and its reslice die in the same scope: freeing is fine
    // (double free is tolerated by the runtime).
    let src = "func work(n int) int { s := make([]int, n)\n s[0] = 3\n t := s[0:1]\n x := t[0]\n return x }\nfunc main() { print(work(80)) }\n";
    assert_eq!(run_both(src), "3\n");
}

#[test]
fn poisoning_survives_switch_and_reslice_programs() {
    use gofree::{execute, PoisonMode};
    let src = "func pick(n int) int { scratch := make([]int, n)\n for i := 0; i < n; i += 1 { scratch[i] = i }\n window := scratch[n/4 : n/2]\n total := 0\n switch len(window) % 2 {\ncase 0:\n total = window[0]\ndefault:\n total = window[1]\n}\n return total }\nfunc main() { total := 0\n for r := 0; r < 20; r += 1 { total += pick(40 + r) }\n print(total) }\n";
    let compiled = compile(src, &CompileOptions::default()).expect("compiles");
    let clean = execute(&compiled, Setting::GoFree, &RunConfig::deterministic(2)).unwrap();
    let poisoned = execute(
        &compiled,
        Setting::GoFree,
        &RunConfig {
            poison: PoisonMode::Flip,
            ..RunConfig::deterministic(2)
        },
    )
    .unwrap();
    assert_eq!(clean.output, poisoned.output);
}

#[test]
fn printer_round_trips_new_syntax() {
    let src = "func f(s []int) []int { t := s[1:3]\n switch len(t) {\ncase 2:\n return t\ndefault:\n return s[:]\n} }\nfunc main() { print(len(f(make([]int, 5)))) }\n";
    let p1 = minigo_syntax::parse(src).expect("parses");
    let text1 = minigo_syntax::print_program(&p1);
    let p2 =
        minigo_syntax::parse(&text1).unwrap_or_else(|e| panic!("{}\n{text1}", e.render(&text1)));
    let text2 = minigo_syntax::print_program(&p2);
    assert_eq!(text1, text2, "printer fixpoint");
    assert!(text1.contains("s[1:3]"));
    assert!(text1.contains("switch "));
}

#[test]
fn typecheck_rejects_bad_switch_and_reslice() {
    let bad = [
        // Switch on a slice.
        "func main() { s := make([]int, 1)\n switch s {\ncase nil:\n print(1)\n} }\n",
        // Case type mismatch.
        "func main() { switch 1 {\ncase \"x\":\n print(1)\n} }\n",
        // Reslice of an int.
        "func main() { x := 3\n y := x[0:1]\n print(y) }\n",
        // Non-integer bound.
        "func main() { s := make([]int, 3)\n t := s[\"a\":2]\n print(len(t)) }\n",
    ];
    for src in bad {
        assert!(minigo_syntax::frontend(src).is_err(), "must reject: {src}");
    }
}
