//! Deep inter-procedural analysis tests: content tags through multi-level
//! call chains, exposure crossing call boundaries, map-returning factories,
//! and mixed passthrough/fresh results — the §4.4 machinery under stress.

use gofree::{compile, compile_and_run, CompileOptions, RunConfig, Setting};

fn frees_in(src: &str) -> String {
    let compiled =
        compile(src, &CompileOptions::default()).unwrap_or_else(|e| panic!("{}", e.render(src)));
    compiled.instrumented_source()
}

fn runs_equivalently(src: &str) {
    let cfg = RunConfig::deterministic(3);
    let go = compile_and_run(src, Setting::Go, &cfg).expect("go");
    let gofree = compile_and_run(src, Setting::GoFree, &cfg).expect("gofree");
    assert_eq!(go.output, gofree.output);
}

/// Content tags compose: an allocation made three calls deep is freed at
/// the outermost caller.
#[test]
fn content_tags_through_three_levels() {
    let src = r#"
func level3(n int) []int {
    s := make([]int, n)
    s[0] = n
    return s
}

func level2(n int) []int {
    s := level3(n + 1)
    return s
}

func level1(n int) []int {
    s := level2(n + 1)
    return s
}

func main() {
    buf := level1(40)
    x := buf[0]
    print(x)
}
"#;
    let text = frees_in(src);
    assert!(
        text.contains("tcfree(buf)"),
        "the depth-3 allocation frees at the top caller:\n{text}"
    );
    // The intermediate functions must NOT free what they return.
    assert!(
        !text.contains("func level2(n int) []int {\n\ttcfree"),
        "{text}"
    );
    runs_equivalently(src);
}

/// A callee that stores through its parameter exposes the argument: the
/// caller must refuse to free objects reachable from it.
#[test]
fn callee_exposure_blocks_caller_free() {
    let src = r#"
func sneak(dst *[]int, v []int) {
    *dst = v
}

func main() {
    n := 30
    a := make([]int, n)
    var hold []int
    {
        b := make([]int, n)
        b[0] = 5
        sneak(&hold, b)
        a[0] = b[0]
    }
    print(a[0], hold[0])
}
"#;
    let text = frees_in(src);
    assert!(
        !text.contains("tcfree(b)"),
        "b escaped through sneak's indirect store:\n{text}"
    );
    runs_equivalently(src);
}

/// Map factories: the caller frees a returned map it keeps local.
#[test]
fn map_factory_freed_in_caller() {
    let src = r#"
func index(n int) map[int]int {
    m := make(map[int]int)
    for i := 0; i < n; i += 1 {
        m[i] = i * i
    }
    return m
}

func main() {
    m := index(50)
    x := m[7]
    print(x, len(m))
}
"#;
    let text = frees_in(src);
    assert!(text.contains("tcfree(m)"), "{text}");
    runs_equivalently(src);
}

/// Mixed results (§4.6.3): freshness is per-result, not per-function.
#[test]
fn per_result_freshness() {
    let src = r#"
func pair(existing []int) ([]int, []int, map[int]int) {
    fresh := make([]int, 16)
    fresh[0] = 1
    idx := make(map[int]int)
    idx[0] = 1
    return fresh, existing, idx
}

func main() {
    n := 25
    base := make([]int, n)
    {
        a, b, c := pair(base)
        x := a[0] + b[0] + c[0]
        print(x)
    }
    base[0] = 2
    print(base[0])
}
"#;
    let text = frees_in(src);
    assert!(
        text.contains("tcfree(a)"),
        "fresh slice result freed:\n{text}"
    );
    assert!(
        text.contains("tcfree(c)"),
        "fresh map result freed:\n{text}"
    );
    assert!(
        !text.contains("tcfree(b)"),
        "passthrough of outer-scope base must not be freed:\n{text}"
    );
    runs_equivalently(src);
}

/// A diamond call graph: both paths' summaries agree and the shared callee
/// is analyzed once.
#[test]
fn diamond_call_graph() {
    let src = r#"
func bottom(n int) []int {
    s := make([]int, n)
    s[0] = n
    return s
}

func left(n int) []int {
    return bottom(n * 2)
}

func right(n int) []int {
    return bottom(n + 1)
}

func main() {
    l := left(8)
    r := right(8)
    x := l[0] + r[0]
    print(x)
}
"#;
    let text = frees_in(src);
    assert!(
        text.contains("tcfree(l)") && text.contains("tcfree(r)"),
        "{text}"
    );
    runs_equivalently(src);
}

/// Recursive factories stay conservative: the default tag blocks freeing.
#[test]
fn recursive_factory_not_freed() {
    let src = r#"
func grow(n int) []int {
    if n == 0 {
        base := make([]int, 4)
        return base
    }
    s := grow(n - 1)
    s = append(s, n)
    return s
}

func main() {
    s := grow(6)
    x := s[len(s)-1]
    print(x)
}
"#;
    let text = frees_in(src);
    assert!(
        !text.contains("tcfree(s)"),
        "recursion uses the default (conservative) tag:\n{text}"
    );
    runs_equivalently(src);
}

/// Exposure information flows through summaries transitively: a wrapper
/// around an exposing function is itself exposing.
#[test]
fn transitive_param_exposure() {
    let src = r#"
func store(dst *[]int, v []int) {
    *dst = v
}

func wrap(dst *[]int, v []int) {
    store(dst, v)
}

func main() {
    n := 20
    var hold []int
    {
        tmp := make([]int, n)
        tmp[0] = 9
        wrap(&hold, tmp)
    }
    print(hold[0])
}
"#;
    let text = frees_in(src);
    assert!(
        !text.contains("tcfree(tmp)"),
        "exposure must survive the wrapper's summary:\n{text}"
    );
    runs_equivalently(src);
}
