//! Cross-validation of the static free-safety auditor against the
//! dynamic shadow-heap sanitizer:
//!
//! * **Soundness gate** — on every program whose free sites the auditor
//!   proves, the sanitizer must report zero violations, on both engines.
//! * **Invisibility gate** — a run's observable report (output, time,
//!   steps, metrics, site profile) must be bit-identical with the
//!   sanitizer on or off.
//! * **Parallel gate** — sanitized distributions must be invariant under
//!   `--jobs`.
//! * **Bug-detection gate** — a deliberately buggy hand-instrumented
//!   program must be flagged by the sanitizer (and rejected by the
//!   auditor) on both engines, and `--audit deny` must make the same
//!   program run clean by stripping the unproven free.
//! * **Generational gate** — the soundness sweep must also hold under
//!   `--collector gen` (minor cycles sweep and recycle nursery slots the
//!   Go backend would leave alone), and a directed nursery-reuse
//!   use-after-free plant must be caught by the shadow heap on both
//!   engines.

use gofree::{
    compile, execute, run_distribution, AuditMode, CollectorKind, CompileOptions, Compiled,
    FreePlacement, RunConfig, Setting, ViolationKind, VmEngine,
};
use gofree_workloads::{corpus, fuzzgen, Scale};

/// The corpus the gates sweep: all workloads, generated corpus programs,
/// and 20 fuzzed programs (fuzz entries may legitimately fail at run
/// time; those runs are skipped, not counted).
fn corpus_sources() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = gofree_workloads::all(Scale::Test)
        .into_iter()
        .map(|w| (w.name.to_string(), w.source))
        .collect();
    for nfuncs in [1, 4, 16] {
        out.push((format!("corpus n={nfuncs}"), corpus::generate(nfuncs)));
    }
    for seed in 0..20 {
        out.push((format!("fuzz seed={seed}"), fuzzgen::generate(seed)));
    }
    out
}

fn compile_audited(label: &str, src: &str) -> Compiled {
    let opts = CompileOptions {
        audit: AuditMode::Warn,
        ..CompileOptions::default()
    };
    compile(src, &opts).unwrap_or_else(|e| panic!("{label}: {}", e.render(src)))
}

#[test]
fn auditor_proved_programs_are_sanitizer_clean_on_both_engines() {
    let mut proved_sites = 0usize;
    let mut total_sites = 0usize;
    for (label, src) in corpus_sources() {
        let compiled = compile_audited(&label, &src);
        let report = compiled.audit.as_ref().expect("audit ran");
        proved_sites += report.proved();
        total_sites += report.sites.len();
        if report.proved() != report.sites.len() {
            // The soundness gate only covers proved programs; unproven
            // sites are exercised by the deny/strip tests below.
            continue;
        }
        for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
            let cfg = RunConfig {
                engine,
                sanitize: true,
                ..RunConfig::deterministic(7)
            };
            let Ok(run) = execute(&compiled, Setting::GoFree, &cfg) else {
                continue; // fuzzed programs may fail (bounds, nil) — not a gate
            };
            assert!(
                run.violations.is_empty(),
                "{label} ({engine}): auditor proved every site but the sanitizer found {:?}",
                run.violations
            );
        }
    }
    // The whole sweep must also clear the paper-level bar: >= 95% of all
    // inserted free sites proved across the corpus.
    assert!(total_sites > 0, "corpus produced no free sites");
    let rate = proved_sites as f64 / total_sites as f64;
    assert!(
        rate >= 0.95,
        "proof rate {rate:.3} below 0.95 ({proved_sites}/{total_sites})"
    );
}

#[test]
fn auditor_proved_programs_are_sanitizer_clean_under_generational() {
    // The same soundness gate as above, under the generational backend:
    // a small nursery forces minor cycles, whose sweep recycles young
    // slots — any unsoundness in how tcfree and the nursery interact
    // (stale young-set entries, slots freed while reachable) shows up as
    // a shadow-heap violation here.
    for (label, src) in corpus_sources() {
        let compiled = compile_audited(&label, &src);
        let report = compiled.audit.as_ref().expect("audit ran");
        if report.proved() != report.sites.len() {
            continue;
        }
        for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
            let cfg = RunConfig {
                engine,
                sanitize: true,
                collector: CollectorKind::Generational,
                nursery_size: 16 * 1024,
                ..RunConfig::deterministic(7)
            };
            let Ok(run) = execute(&compiled, Setting::GoFree, &cfg) else {
                continue; // fuzzed programs may fail (bounds, nil) — not a gate
            };
            assert!(
                run.violations.is_empty(),
                "{label} ({engine}, gen): auditor proved every site but the sanitizer found {:?}",
                run.violations
            );
        }
    }
}

#[test]
fn sanitizer_is_observationally_invisible() {
    for (label, src) in corpus_sources() {
        let compiled = compile_audited(&label, &src);
        for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
            let run_with = |sanitize: bool| {
                let cfg = RunConfig {
                    engine,
                    sanitize,
                    ..RunConfig::deterministic(13)
                };
                execute(&compiled, Setting::GoFree, &cfg)
            };
            match (run_with(false), run_with(true)) {
                (Ok(plain), Ok(sanitized)) => {
                    assert_eq!(plain.output, sanitized.output, "{label} ({engine}): output");
                    assert_eq!(plain.time, sanitized.time, "{label} ({engine}): time");
                    assert_eq!(plain.steps, sanitized.steps, "{label} ({engine}): steps");
                    assert_eq!(
                        format!("{:?}", plain.metrics),
                        format!("{:?}", sanitized.metrics),
                        "{label} ({engine}): metrics"
                    );
                    assert_eq!(
                        plain.site_profile, sanitized.site_profile,
                        "{label} ({engine}): site profile"
                    );
                }
                (Err(p), Err(s)) => {
                    assert_eq!(p.to_string(), s.to_string(), "{label} ({engine}): error");
                }
                (p, s) => panic!(
                    "{label} ({engine}): sanitizer changed the outcome: \
                     off={p:?} on={s:?}"
                ),
            }
        }
    }
}

#[test]
fn sanitized_distributions_are_jobs_invariant() {
    let w = &gofree_workloads::all(Scale::Test)[0];
    let compiled = compile_audited(w.name, &w.source);
    for collector in CollectorKind::all() {
        let run_with = |jobs: usize| {
            let cfg = RunConfig {
                sanitize: true,
                jobs,
                collector,
                ..RunConfig::deterministic(3)
            };
            run_distribution(&compiled, Setting::GoFree, &cfg, 6).expect("distribution")
        };
        let seq = run_with(1);
        let par = run_with(2);
        assert_eq!(seq.len(), par.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(a.output, b.output, "{collector} run {i}: output");
            assert_eq!(a.time, b.time, "{collector} run {i}: time");
            assert_eq!(
                format!("{:?}", a.metrics),
                format!("{:?}", b.metrics),
                "{collector} run {i}: metrics"
            );
            assert_eq!(
                a.violations, b.violations,
                "{collector} run {i}: violations"
            );
        }
    }
}

/// The planted bug: a hand-written premature free of a still-live slice.
const PLANTED_BUG: &str =
    "func main() { n := 100\n s := make([]int, n)\n s[0] = 7\n tcfree(s)\n print(s[0]) }\n";

#[test]
fn planted_bug_is_caught_by_both_oracles_on_both_engines() {
    // Static side: the auditor rejects the hand-written free.
    let audited = compile(
        PLANTED_BUG,
        &CompileOptions {
            audit: AuditMode::Warn,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    let report = audited.audit.as_ref().expect("audit ran");
    assert!(
        report.unproven().count() >= 1,
        "auditor must reject the premature free"
    );

    // Dynamic side: the sanitizer flags the stale read on both engines,
    // identically (violations are deterministic: object id + step).
    let mut flagged = Vec::new();
    for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
        let cfg = RunConfig {
            engine,
            sanitize: true,
            ..RunConfig::deterministic(0)
        };
        let run = execute(&audited, Setting::GoFree, &cfg).expect("runs to completion");
        assert!(
            !run.violations.is_empty(),
            "{engine}: sanitizer missed the planted use-after-free"
        );
        assert_eq!(run.violations[0].kind, ViolationKind::UseAfterFree);
        flagged.push(run.violations);
    }
    assert_eq!(flagged[0], flagged[1], "engines agree on the violations");
}

/// The nursery-reuse plant: a slice is freed by hand, allocation churn
/// then drives the generational backend through minor cycles — whose
/// sweep recycles the freed nursery slot into new objects — and the
/// stale pointer is finally read. `churn`'s buffer has a non-constant
/// size, so every iteration heap-allocates and the nursery fills fast.
const NURSERY_REUSE_BUG: &str = "func churn(n int) int { b := make([]int, n)\n b[0] = 1\n \
     return b[0] }\nfunc main() { n := 64\n s := make([]int, n)\n s[0] = 7\n tcfree(s)\n \
     total := 0\n for i := 0; i < 2000; i += 1 { total += churn(64) }\n \
     print(s[0] + total) }\n";

#[test]
fn nursery_reuse_plant_is_caught_by_the_shadow_heap() {
    let audited = compile(
        NURSERY_REUSE_BUG,
        &CompileOptions {
            audit: AuditMode::Warn,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    // The auditor already rejects the premature hand-written free.
    let report = audited.audit.as_ref().expect("audit ran");
    assert!(
        report.unproven().count() >= 1,
        "auditor must reject the premature free"
    );
    let mut flagged = Vec::new();
    for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
        let cfg = RunConfig {
            engine,
            sanitize: true,
            collector: CollectorKind::Generational,
            nursery_size: 16 * 1024,
            ..RunConfig::deterministic(0)
        };
        let run = execute(&audited, Setting::GoFree, &cfg).expect("runs to completion");
        assert!(
            run.metrics.gcs_minor >= 1,
            "{engine}: the churn loop must drive at least one minor cycle \
             (got {:?} cycles) or the plant is not exercising the nursery",
            run.metrics.gcs
        );
        assert!(
            !run.violations.is_empty(),
            "{engine}: shadow heap missed the nursery-reuse use-after-free"
        );
        // The free went down the small-object allocation-index revert
        // path, so the stale read is classified as use-after-revert —
        // the revert flavour of use-after-free.
        assert_eq!(run.violations[0].kind, ViolationKind::UseAfterRevert);
        flagged.push(run.violations);
    }
    assert_eq!(flagged[0], flagged[1], "engines agree on the violations");
}

#[test]
fn lastuse_corpus_under_deny_is_sanitizer_clean_everywhere() {
    // The liveness-placement analogue of the soundness gate: compile the
    // whole corpus with `--free-placement lastuse --audit deny` (every
    // advanced and partial free either proved or stripped) and sweep the
    // shadow heap on both engines under both collectors.
    for (label, src) in corpus_sources() {
        let opts = CompileOptions {
            audit: AuditMode::Deny,
            free_placement: FreePlacement::LastUse,
            ..CompileOptions::default()
        };
        let compiled =
            compile(&src, &opts).unwrap_or_else(|e| panic!("{label}: {}", e.render(&src)));
        for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
            for collector in CollectorKind::all() {
                let cfg = RunConfig {
                    engine,
                    sanitize: true,
                    collector,
                    nursery_size: 16 * 1024,
                    ..RunConfig::deterministic(7)
                };
                let Ok(run) = execute(&compiled, Setting::GoFree, &cfg) else {
                    continue; // fuzzed programs may fail (bounds, nil) — not a gate
                };
                assert!(
                    run.violations.is_empty(),
                    "{label} ({engine}, {collector}): lastuse+deny run must be \
                     sanitizer-clean, found {:?}",
                    run.violations
                );
            }
        }
    }
}

/// The lastuse plant: the same premature hand-written free as
/// [`PLANTED_BUG`], but compiled through the liveness-placement pipeline
/// (plan → instrument-with-plan) — a stand-in for a planner bug that
/// advances a free past a live use.
#[test]
fn planted_premature_free_under_lastuse_is_caught_and_denied() {
    let warn = compile(
        PLANTED_BUG,
        &CompileOptions {
            audit: AuditMode::Warn,
            free_placement: FreePlacement::LastUse,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    let report = warn.audit.as_ref().expect("audit ran");
    assert!(
        report.unproven().count() >= 1,
        "auditor must reject the premature free under lastuse"
    );
    let stats = warn.placement.expect("lastuse carries stats");
    assert_eq!(
        stats.suppressed as usize,
        report.unproven().count(),
        "suppressed counter mirrors the audit"
    );
    let mut flagged = Vec::new();
    for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
        let cfg = RunConfig {
            engine,
            sanitize: true,
            ..RunConfig::deterministic(0)
        };
        let run = execute(&warn, Setting::GoFree, &cfg).expect("runs to completion");
        assert!(
            !run.violations.is_empty(),
            "{engine}: sanitizer missed the planted use-after-free under lastuse"
        );
        assert_eq!(run.violations[0].kind, ViolationKind::UseAfterFree);
        flagged.push(run.violations);
    }
    assert_eq!(flagged[0], flagged[1], "engines agree on the violations");

    // `--audit deny` neutralizes the plant on both engines.
    let denied = compile(
        PLANTED_BUG,
        &CompileOptions {
            audit: AuditMode::Deny,
            free_placement: FreePlacement::LastUse,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    assert!(denied.frees_suppressed >= 1, "deny stripped the bad free");
    for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
        let cfg = RunConfig {
            engine,
            sanitize: true,
            ..RunConfig::deterministic(0)
        };
        let run = execute(&denied, Setting::GoFree, &cfg).expect("runs");
        assert_eq!(run.output, "7\n");
        assert!(
            run.violations.is_empty(),
            "{engine}: stripped lastuse program must be sanitizer-clean"
        );
    }
}

#[test]
fn audit_deny_makes_the_planted_bug_run_clean() {
    let denied = compile(
        PLANTED_BUG,
        &CompileOptions {
            audit: AuditMode::Deny,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    assert!(denied.frees_suppressed >= 1, "deny stripped the bad free");
    for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
        let cfg = RunConfig {
            engine,
            sanitize: true,
            ..RunConfig::deterministic(0)
        };
        let run = execute(&denied, Setting::GoFree, &cfg).expect("runs");
        assert_eq!(run.output, "7\n");
        assert!(
            run.violations.is_empty(),
            "{engine}: stripped program must be sanitizer-clean"
        );
        assert_eq!(
            run.metrics.frees_suppressed, denied.frees_suppressed,
            "{engine}: suppression count surfaces in run metrics"
        );
    }
}
