//! Differential gates for liveness-driven free placement (`--free-placement
//! lastuse` vs the §4.5 `scope` default):
//!
//! * **Output gate** — placement may change *when* frees run, never what
//!   the program computes: stdout must match bit-exactly over the
//!   workload corpus, generated corpus programs, and fuzz seeds.
//! * **Allocation gate** — placement happens after allocation decisions;
//!   allocation counts and bytes must be identical, and lastuse may only
//!   reclaim more (partial frees), never less.
//! * **Engine gate** — under the same placement, the tree-walk and
//!   bytecode engines must produce bit-identical reports.
//! * **Jobs gate** — lastuse distributions are `--jobs` invariant.
//! * **Drag gate** — per allocation site, mean alloc→tcfree drag under
//!   lastuse is never more than marginally above scope (an advanced
//!   free's tick charge can land inside another object's lifetime, so a
//!   site may shift by a few ticks; it must never grow materially).
//! * **Proof gate** — switching to lastuse introduces no new unproven
//!   free sites: every advanced and partial placement is re-proved by
//!   the independent auditor.

use gofree::{
    compile, execute, run_distribution, AuditMode, CompileOptions, Compiled, FreePlacement,
    Profile, RunConfig, Setting, VmEngine,
};
use gofree_workloads::{corpus, fuzzgen, Scale};

fn corpus_sources() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = gofree_workloads::all(Scale::Test)
        .into_iter()
        .map(|w| (w.name.to_string(), w.source))
        .collect();
    for nfuncs in [1, 4, 16] {
        out.push((format!("corpus n={nfuncs}"), corpus::generate(nfuncs)));
    }
    for seed in 0..20 {
        out.push((format!("fuzz seed={seed}"), fuzzgen::generate(seed)));
    }
    out
}

fn compile_placed(label: &str, src: &str, placement: FreePlacement) -> Compiled {
    let opts = CompileOptions {
        free_placement: placement,
        ..CompileOptions::default()
    };
    compile(src, &opts).unwrap_or_else(|e| panic!("{label}: {}", e.render(src)))
}

#[test]
fn lastuse_preserves_output_and_allocations_over_corpus() {
    for (label, src) in corpus_sources() {
        let scope = compile_placed(&label, &src, FreePlacement::Scope);
        let lastuse = compile_placed(&label, &src, FreePlacement::LastUse);
        assert!(scope.placement.is_none(), "{label}: scope carries no stats");
        let stats = lastuse.placement.expect("lastuse carries stats");
        assert_eq!(stats.mode.name(), "lastuse");
        for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
            let cfg = RunConfig {
                engine,
                ..RunConfig::deterministic(11)
            };
            let s = execute(&scope, Setting::GoFree, &cfg);
            let l = execute(&lastuse, Setting::GoFree, &cfg);
            match (s, l) {
                (Ok(s), Ok(l)) => {
                    assert_eq!(s.output, l.output, "{label} ({engine}): output");
                    assert_eq!(
                        s.metrics.alloced_bytes, l.metrics.alloced_bytes,
                        "{label} ({engine}): allocation bytes"
                    );
                    assert_eq!(
                        s.metrics.alloced_objects, l.metrics.alloced_objects,
                        "{label} ({engine}): allocation count"
                    );
                    assert!(
                        l.metrics.freed_bytes >= s.metrics.freed_bytes,
                        "{label} ({engine}): lastuse reclaimed less \
                         ({} < {})",
                        l.metrics.freed_bytes,
                        s.metrics.freed_bytes
                    );
                }
                (Err(se), Err(le)) => {
                    // Fuzzed programs may legitimately fail (bounds, nil);
                    // both placements must fail the same way.
                    assert_eq!(se.to_string(), le.to_string(), "{label} ({engine}): error");
                }
                (s, l) => panic!(
                    "{label} ({engine}): placement changed the outcome: scope={s:?} lastuse={l:?}"
                ),
            }
        }
    }
}

#[test]
fn engines_agree_bit_exactly_under_lastuse() {
    for (label, src) in corpus_sources() {
        let lastuse = compile_placed(&label, &src, FreePlacement::LastUse);
        let run = |engine| {
            let cfg = RunConfig {
                engine,
                ..RunConfig::deterministic(5)
            };
            execute(&lastuse, Setting::GoFree, &cfg)
        };
        match (run(VmEngine::TreeWalk), run(VmEngine::Bytecode)) {
            (Ok(tw), Ok(bc)) => {
                assert_eq!(tw.output, bc.output, "{label}: output");
                assert_eq!(tw.time, bc.time, "{label}: virtual time");
                assert_eq!(tw.steps, bc.steps, "{label}: steps");
                assert_eq!(
                    format!("{:?}", tw.metrics),
                    format!("{:?}", bc.metrics),
                    "{label}: metrics"
                );
                assert_eq!(tw.site_profile, bc.site_profile, "{label}: site profile");
                assert_eq!(tw.placement, bc.placement, "{label}: placement stats");
            }
            (Err(t), Err(b)) => assert_eq!(t.to_string(), b.to_string(), "{label}: error"),
            (t, b) => {
                panic!("{label}: engines disagree on outcome: tree-walk={t:?} bytecode={b:?}")
            }
        }
    }
}

#[test]
fn lastuse_distributions_are_jobs_invariant() {
    let w = &gofree_workloads::all(Scale::Test)[0];
    let lastuse = compile_placed(w.name, &w.source, FreePlacement::LastUse);
    let run_with = |jobs: usize| {
        let cfg = RunConfig {
            jobs,
            jitter: 0.02,
            ..RunConfig::deterministic(9)
        };
        run_distribution(&lastuse, Setting::GoFree, &cfg, 6).expect("distribution")
    };
    let seq = run_with(1);
    let par = run_with(3);
    assert_eq!(seq.len(), par.len());
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(a.output, b.output, "run {i}: output");
        assert_eq!(a.time, b.time, "run {i}: time");
        assert_eq!(
            format!("{:?}", a.metrics),
            format!("{:?}", b.metrics),
            "run {i}: metrics"
        );
        assert_eq!(a.placement, b.placement, "run {i}: placement stats");
    }
}

/// An advanced free's tick charge can move inside another object's
/// lifetime, lengthening that object's drag by the cost of the free
/// operation itself — a few virtual ticks. Anything beyond this bound
/// means a placement actually regressed.
const DRAG_SLACK_TICKS: f64 = 8.0;

#[test]
fn per_site_drag_is_non_increasing_under_lastuse() {
    for w in gofree_workloads::all(Scale::Test) {
        let scope = compile_placed(w.name, &w.source, FreePlacement::Scope);
        let lastuse = compile_placed(w.name, &w.source, FreePlacement::LastUse);
        let profile_of = |c: &Compiled| {
            let cfg = RunConfig {
                trace: true,
                ..RunConfig::deterministic(2)
            };
            let report = execute(c, Setting::GoFree, &cfg).expect("runs");
            let p = Profile::build(report.trace.as_ref().expect("traced"));
            p.reconcile(&report.metrics).expect("reconciles");
            p
        };
        let sp = profile_of(&scope);
        let lp = profile_of(&lastuse);
        let means = |p: &Profile| -> Vec<(u32, f64)> {
            p.sites
                .iter()
                .filter_map(|d| {
                    let site = d.site?;
                    (d.tcfree.count() > 0)
                        .then(|| (site, d.tcfree.sum() as f64 / d.tcfree.count() as f64))
                })
                .collect()
        };
        let scope_means = means(&sp);
        for (site, l_mean) in means(&lp) {
            let Some((_, s_mean)) = scope_means.iter().find(|(s, _)| *s == site) else {
                continue; // partial frees reclaim sites scope never tcfrees
            };
            assert!(
                l_mean <= s_mean + DRAG_SLACK_TICKS,
                "{} site {site}: lastuse drag {l_mean:.1} > scope {s_mean:.1}",
                w.name
            );
        }
    }
}

#[test]
fn lastuse_introduces_no_new_unproven_sites() {
    for (label, src) in corpus_sources() {
        let audit_with = |placement| {
            let opts = CompileOptions {
                audit: AuditMode::Warn,
                free_placement: placement,
                ..CompileOptions::default()
            };
            let c = compile(&src, &opts).unwrap_or_else(|e| panic!("{label}: {}", e.render(&src)));
            let unproven = c.audit.as_ref().expect("audit ran").unproven().count();
            (c, unproven)
        };
        let (_, scope_unproven) = audit_with(FreePlacement::Scope);
        let (lastuse, lastuse_unproven) = audit_with(FreePlacement::LastUse);
        assert_eq!(
            lastuse_unproven, scope_unproven,
            "{label}: placement changed provability"
        );
        let stats = lastuse.placement.expect("stats");
        assert_eq!(
            stats.suppressed as usize, lastuse_unproven,
            "{label}: suppressed counter mirrors the audit"
        );
    }
}
