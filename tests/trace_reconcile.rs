//! Trace/metrics reconciliation properties, for every corpus program and
//! a fuzzed cohort, on both VM engines:
//!
//! * folding the event stream reproduces the run's [`Metrics`] exactly
//!   ([`gofree::Trace::reconcile`]);
//! * tracing is invisible — a traced run's report is bit-identical to an
//!   untraced one in every observable field;
//! * traces are bit-identical across the tree-walk and bytecode engines;
//! * traces are `--jobs`-invariant: fanning a seeded distribution across
//!   workers yields the same per-run event streams as running
//!   sequentially.

use gofree::{
    compile, execute, run_distribution, CompileOptions, Compiled, Report, RunConfig, Setting,
    VmEngine,
};
use gofree_workloads::{corpus, fuzzgen, micro, Scale};

/// The evaluation-style config: a tight GC trigger so corpus programs
/// actually exercise the collector, and seeded nondeterminism so mcache
/// flushes appear in the streams.
fn traced_cfg(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        min_heap: 128 * 1024,
        trace: true,
        ..RunConfig::default()
    }
}

/// Runs one compiled setting on one engine, checking the trace exists
/// and reconciles, and returns the report.
fn run_traced(label: &str, compiled: &Compiled, setting: Setting, cfg: &RunConfig) -> Report {
    let report = execute(compiled, setting, cfg)
        .unwrap_or_else(|e| panic!("{label} ({setting}, {:?}): {e}", cfg.engine));
    let trace = report
        .trace
        .as_ref()
        .unwrap_or_else(|| panic!("{label} ({setting}): traced run carries no trace"));
    trace
        .reconcile(&report.metrics)
        .unwrap_or_else(|e| panic!("{label} ({setting}, {:?}): {e}", cfg.engine));
    report
}

/// The full property set for one source program.
fn check_program(label: &str, src: &str) {
    let go = compile(src, &CompileOptions::go())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    let gofree = compile(src, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    for (compiled, setting) in [
        (&go, Setting::Go),
        (&go, Setting::GoGcOff),
        (&gofree, Setting::GoFree),
    ] {
        let cfg = traced_cfg(11);

        // Reconciliation + invisibility on the default (bytecode) engine.
        let traced = run_traced(label, compiled, setting, &cfg);
        let untraced = execute(
            compiled,
            setting,
            &RunConfig {
                trace: false,
                ..cfg.clone()
            },
        )
        .unwrap_or_else(|e| panic!("{label} ({setting}): {e}"));
        assert!(untraced.trace.is_none(), "{label}: untraced run has trace");
        assert_eq!(traced.output, untraced.output, "{label} ({setting})");
        assert_eq!(traced.time, untraced.time, "{label} ({setting})");
        assert_eq!(traced.steps, untraced.steps, "{label} ({setting})");
        assert_eq!(
            format!("{:?}", traced.metrics),
            format!("{:?}", untraced.metrics),
            "{label} ({setting}): tracing changed metrics"
        );
        assert_eq!(
            traced.site_profile, untraced.site_profile,
            "{label} ({setting}): tracing changed the site profile"
        );

        // Engine identity of the stream itself.
        let tree = run_traced(
            label,
            compiled,
            setting,
            &RunConfig {
                engine: VmEngine::TreeWalk,
                ..cfg.clone()
            },
        );
        assert_eq!(
            traced.trace, tree.trace,
            "{label} ({setting}): engines disagree on the event stream"
        );
    }
}

#[test]
fn workload_corpus_reconciles_on_both_engines() {
    for w in gofree_workloads::all(Scale::Test) {
        check_program(w.name, &w.source);
    }
}

#[test]
fn microbench_and_generated_corpus_reconcile() {
    for &c in &[1, 8, 32] {
        check_program(&format!("micro c={c}"), &micro::source(c, 96));
    }
    for nfuncs in [3, 10] {
        check_program(&format!("corpus n={nfuncs}"), &corpus::generate(nfuncs));
    }
}

#[test]
fn sample_programs_reconcile() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("samples directory") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("mgo") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable");
        check_program(&path.display().to_string(), &src);
        checked += 1;
    }
    assert!(checked >= 4, "expected several sample programs");
}

#[test]
fn fuzzed_programs_reconcile() {
    // 30 generator seeds; every generated program must uphold the full
    // property set (reconcile, invisibility, engine identity).
    for seed in 0..30u64 {
        let src = fuzzgen::generate(seed);
        check_program(&format!("fuzz seed={seed}"), &src);
    }
}

#[test]
fn traces_are_jobs_invariant() {
    let w = gofree_workloads::by_name("json", Scale::Test).expect("json workload");
    let compiled = compile(&w.source, &CompileOptions::default()).expect("compiles");
    let runs = 6;
    let seq = run_distribution(
        &compiled,
        Setting::GoFree,
        &RunConfig {
            jobs: 1,
            ..traced_cfg(3)
        },
        runs,
    )
    .expect("sequential runs");
    let par = run_distribution(
        &compiled,
        Setting::GoFree,
        &RunConfig {
            jobs: 4,
            ..traced_cfg(3)
        },
        runs,
    )
    .expect("parallel runs");
    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        let st = s.trace.as_ref().expect("trace");
        let pt = p.trace.as_ref().expect("trace");
        assert_eq!(st, pt, "run {i}: traces differ across --jobs");
        st.reconcile(&s.metrics)
            .unwrap_or_else(|e| panic!("run {i}: {e}"));
        // Distinct seeds must actually produce distinct streams for the
        // invariance check to mean anything.
        if i > 0 {
            assert_ne!(
                seq[0].trace, seq[i].trace,
                "seeded runs unexpectedly share one stream"
            );
        }
    }
}
