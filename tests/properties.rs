//! Property-based tests (proptest) over the core data structures:
//! allocator accounting, escape-graph solving, statistics, and the
//! printer/parser round trip.

use proptest::prelude::*;

use minigo_escape::{points_to, solve, walk, EscapeGraph, LocKind, SolveConfig, HEAP_LOC};
use minigo_runtime::{Category, FreeOutcome, FreeSource, Runtime, RuntimeConfig};
use minigo_syntax::VarId;

fn quiet_runtime() -> Runtime {
    Runtime::new(RuntimeConfig {
        migrate_prob: 0.0,
        jitter: 0.0,
        gc_enabled: false,
        ..RuntimeConfig::default()
    })
}

proptest! {
    /// Allocator accounting: live bytes equal the rounded sizes of the
    /// objects that were allocated and not freed, in any interleaving.
    #[test]
    fn allocator_accounting_balances(ops in proptest::collection::vec((1u64..40_000, any::<bool>()), 1..120)) {
        let mut rt = quiet_runtime();
        let mut live = Vec::new();
        let mut expected_live: i64 = 0;
        for (size, do_free) in ops {
            let addr = rt.alloc(size, Category::Other);
            let rounded = if size.max(8) <= minigo_runtime::MAX_SMALL_SIZE {
                minigo_runtime::class_size(minigo_runtime::class_for(size.max(8)))
            } else {
                size
            };
            expected_live += rounded as i64;
            live.push((addr, rounded));
            if do_free && live.len() > 1 {
                let (victim, bytes) = live.swap_remove(live.len() / 2);
                match rt.tcfree(victim, FreeSource::SliceLifetime) {
                    FreeOutcome::Freed { bytes: freed } => {
                        prop_assert_eq!(freed, bytes);
                        expected_live -= bytes as i64;
                    }
                    FreeOutcome::Bailed(_) => {
                        // Bails must leave the object allocated.
                        live.push((victim, bytes));
                    }
                    FreeOutcome::Poisoned => unreachable!("poison off"),
                }
            }
        }
        prop_assert_eq!(rt.heap_live() as i64, expected_live);
        prop_assert!(rt.footprint() >= rt.heap_live(), "pages cover live bytes");
        let m = rt.metrics();
        prop_assert!(m.freed_bytes <= m.alloced_bytes);
    }

    /// Double frees are always tolerated, never double-counted.
    #[test]
    fn double_free_tolerated(size in 1u64..5000, repeats in 2usize..6) {
        let mut rt = quiet_runtime();
        let a = rt.alloc(size, Category::Slice);
        let mut freed_count = 0;
        for _ in 0..repeats {
            if let FreeOutcome::Freed { .. } = rt.tcfree(a, FreeSource::SliceLifetime) {
                freed_count += 1;
            }
        }
        prop_assert_eq!(freed_count, 1, "exactly one free succeeds");
        prop_assert_eq!(rt.heap_live(), 0);
    }

    /// Escape graph: PointsTo ⊆ Holds for every location, all dereference
    /// counts ≥ -1, and solving twice changes nothing (idempotence).
    #[test]
    fn solver_invariants(edges in proptest::collection::vec((0u32..12, 0u32..12, -1i32..=2), 0..40)) {
        let mut g = EscapeGraph::new();
        for i in 0..12u32 {
            g.add_location(LocKind::Var(VarId(i)), format!("v{i}"), (i % 3) as i32, 1 + (i % 4) as i32, true);
        }
        for (a, b, w) in edges {
            // Location 0 is the heap dummy; shift user nodes by 1.
            g.add_edge(
                minigo_escape::LocId(a % 12 + 1),
                minigo_escape::LocId(b % 12 + 1),
                w,
            );
        }
        solve(&mut g, &SolveConfig::default());
        let snapshot = g.dump();
        for id in g.ids() {
            let dist = walk(&g, id);
            for d in dist.iter().flatten() {
                prop_assert!(*d >= -1, "TrackDerefs(t) >= -1 always holds");
            }
            let pts = points_to(&g, id);
            for p in &pts {
                prop_assert!(dist[p.index()] == Some(-1));
            }
            // Outlived requires a pointee with a strictly smaller
            // OutermostRef (definition 4.15).
            if g.loc(id).outlived {
                let has_witness = pts
                    .iter()
                    .any(|p| g.loc(*p).outermost_ref < g.loc(id).decl_depth);
                prop_assert!(has_witness, "outlived without witness at {id}");
            }
        }
        let mut g2 = g.clone();
        solve(&mut g2, &SolveConfig::default());
        prop_assert_eq!(snapshot, g2.dump(), "solve must be idempotent");
    }

    /// Adding edges is monotone for HeapAlloc: escaping more never makes a
    /// heap location become stack.
    #[test]
    fn solver_monotone_in_edges(edges in proptest::collection::vec((0u32..8, 0u32..8, -1i32..=1), 1..24)) {
        let build = |n_edges: usize| {
            let mut g = EscapeGraph::new();
            for i in 0..8u32 {
                g.add_location(LocKind::Var(VarId(i)), format!("v{i}"), 0, 1, true);
            }
            for (a, b, w) in edges.iter().take(n_edges) {
                g.add_edge(
                    minigo_escape::LocId(a % 8 + 1),
                    minigo_escape::LocId(b % 8 + 1),
                    *w,
                );
            }
            // One escape seed: node 1 flows to the heap.
            g.add_edge(minigo_escape::LocId(1), HEAP_LOC, 0);
            solve(&mut g, &SolveConfig::default());
            g
        };
        let smaller = build(edges.len() / 2);
        let bigger = build(edges.len());
        for id in smaller.ids() {
            if smaller.loc(id).heap_alloc {
                prop_assert!(
                    bigger.loc(id).heap_alloc,
                    "more dataflow can only increase escape"
                );
            }
        }
    }

    /// Welch's p-value is always in [0, 1] and symmetric in its arguments.
    #[test]
    fn welch_bounds_and_symmetry(
        a in proptest::collection::vec(-1e6f64..1e6, 2..40),
        b in proptest::collection::vec(-1e6f64..1e6, 2..40),
    ) {
        let w1 = gofree::welch_t_test(&a, &b);
        let w2 = gofree::welch_t_test(&b, &a);
        prop_assert!((0.0..=1.0).contains(&w1.p), "p = {}", w1.p);
        prop_assert!((w1.p - w2.p).abs() < 1e-9, "{} vs {}", w1.p, w2.p);
        prop_assert!((w1.t + w2.t).abs() < 1e-9);
    }

    /// Shifting one sample strictly away from the other never increases
    /// the p-value (more separation = more significance).
    #[test]
    fn welch_monotone_in_separation(base in proptest::collection::vec(0f64..100.0, 5..30), shift in 1f64..50.0) {
        let near: Vec<f64> = base.iter().map(|x| x + 1.0).collect();
        let far: Vec<f64> = base.iter().map(|x| x + 1.0 + shift).collect();
        let p_near = gofree::welch_t_test(&base, &near).p;
        let p_far = gofree::welch_t_test(&base, &far).p;
        prop_assert!(p_far <= p_near + 1e-9, "{p_far} > {p_near}");
    }

    /// Printer/parser fixpoint on generated arithmetic expressions.
    #[test]
    fn expr_print_parse_fixpoint(seed in 0u64..10_000) {
        // Generate a deterministic random expression from the seed.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        fn gen(depth: u32, next: &mut impl FnMut() -> u32) -> String {
            if depth == 0 || next().is_multiple_of(3) {
                return format!("{}", next() % 100);
            }
            let op = ["+", "-", "*", "/", "%"][(next() % 5) as usize];
            format!("({} {} {})", gen(depth - 1, next), op, gen(depth - 1, next))
        }
        let src = gen(4, &mut next);
        let e1 = minigo_syntax::parse_expr(&src).expect("generated expr parses");
        let mut p1 = String::new();
        minigo_syntax::printer::print_expr(&mut p1, &e1);
        let e2 = minigo_syntax::parse_expr(&p1).expect("printed expr reparses");
        let mut p2 = String::new();
        minigo_syntax::printer::print_expr(&mut p2, &e2);
        prop_assert_eq!(p1, p2, "printing is a fixpoint");
    }

    /// Random map workloads: the VM's map matches a reference HashMap.
    #[test]
    fn vm_map_matches_reference(keys in proptest::collection::vec(0i64..50, 1..60)) {
        use std::collections::HashMap as StdMap;
        let mut body = String::from("func main() { m := make(map[int]int)\n");
        let mut reference: StdMap<i64, i64> = StdMap::new();
        for (i, k) in keys.iter().enumerate() {
            if i % 5 == 4 {
                body.push_str(&format!("delete(m, {k})\n"));
                reference.remove(k);
            } else {
                body.push_str(&format!("m[{k}] = {i}\n"));
                reference.insert(*k, i as i64);
            }
        }
        let probe: Vec<i64> = (0..50).collect();
        for k in &probe {
            body.push_str(&format!("print(m[{k}])\n"));
        }
        body.push_str("print(len(m)) }\n");
        let r = gofree::compile_and_run(
            &body,
            gofree::Setting::GoFree,
            &gofree::RunConfig::deterministic(0),
        )
        .expect("runs");
        let mut expected = String::new();
        for k in &probe {
            expected.push_str(&format!("{}\n", reference.get(k).copied().unwrap_or(0)));
        }
        expected.push_str(&format!("{}\n", reference.len()));
        prop_assert_eq!(r.output, expected);
    }
}
