//! The §6.8 robustness suite as an integration test: every workload, the
//! generated corpus, and a battery of tricky programs run with the mock
//! `tcfree` that corrupts memory instead of freeing it. A single unsound
//! compiler-inserted free turns into a `PoisonedRead` failure.

use gofree::{compile, execute, CompileOptions, PoisonMode, RunConfig, Setting};
use gofree_workloads::{all, Scale};

fn poisoned_matches_clean(src: &str, label: &str) {
    let compiled = compile(src, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    let clean = execute(&compiled, Setting::GoFree, &RunConfig::deterministic(1))
        .unwrap_or_else(|e| panic!("{label} clean: {e}"));
    for poison in [PoisonMode::Zero, PoisonMode::Flip] {
        let cfg = RunConfig {
            poison,
            ..RunConfig::deterministic(1)
        };
        let run = execute(&compiled, Setting::GoFree, &cfg)
            .unwrap_or_else(|e| panic!("{label} poisoned ({poison:?}): {e}"));
        assert_eq!(run.output, clean.output, "{label} ({poison:?})");
    }
}

#[test]
fn workloads_survive_poisoning() {
    for w in all(Scale::Test) {
        poisoned_matches_clean(&w.source, w.name);
    }
}

#[test]
fn corpus_survives_poisoning() {
    for n in [15, 45] {
        let src = gofree_workloads::corpus::generate(n);
        poisoned_matches_clean(&src, &format!("corpus-{n}"));
    }
}

#[test]
fn microbenchmark_survives_poisoning() {
    for &c in gofree_workloads::micro::C_VALUES {
        let src = gofree_workloads::micro::source(c, 16);
        poisoned_matches_clean(&src, &format!("micro-c{c}"));
    }
}

/// Adversarial programs that try to trick the analysis into unsound
/// frees: aliasing through calls, conditional escapes, loop-carried
/// references, maps holding slices, double indirection.
#[test]
fn adversarial_programs_survive_poisoning() {
    let programs: &[(&str, &str)] = &[
        (
            "alias-through-call",
            "func id(s []int) []int { return s }\nfunc main() { n := 64\n a := make([]int, n)\n b := id(a)\n a[0] = 5\n print(b[0]) }\n",
        ),
        (
            "conditional-escape",
            "func main() { n := 64\n var keep []int\n for i := 0; i < 10; i += 1 { s := make([]int, n)\n s[0] = i\n if i == 5 { keep = s } }\n print(keep[0]) }\n",
        ),
        (
            "loop-carried",
            "func main() { n := 32\n prev := make([]int, n)\n prev[0] = 1\n for i := 0; i < 8; i += 1 { cur := make([]int, n)\n cur[0] = prev[0] + 1\n prev = cur }\n print(prev[0]) }\n",
        ),
        (
            "map-holds-slices",
            "func main() { n := 16\n m := make(map[int][]int)\n for i := 0; i < 12; i += 1 { s := make([]int, n)\n s[0] = i\n m[i] = s }\n print(m[7][0], len(m)) }\n",
        ),
        (
            "double-indirection",
            "func main() { n := 40\n s := make([]int, n)\n ps := &s\n pps := &ps\n (*(*pps))[0] = 9\n t := *ps\n print(t[0]) }\n",
        ),
        (
            "struct-carries-slice",
            "type Box struct { data []int }\nfunc fill(n int) Box { b := Box{make([]int, n)}\n b.data[0] = n\n return b }\nfunc main() { b := fill(50)\n c := b\n print(c.data[0]) }\n",
        ),
        (
            "slice-of-maps-window",
            "func main() { w := make([]map[int]int, 4)\n for i := 0; i < 20; i += 1 { m := make(map[int]int)\n for j := 0; j < 20; j += 1 { m[j] = i*j }\n w[i%4] = m }\n print(w[3][5]) }\n",
        ),
        (
            "shared-growth",
            "func main() { m := make(map[int]int)\n alias := m\n for i := 0; i < 120; i += 1 { m[i] = i }\n print(alias[100], len(alias)) }\n",
        ),
        (
            "free-then-reuse-pattern",
            "func scratchpad(n int) int { s := make([]int, n)\n for i := 0; i < n; i += 1 { s[i] = i }\n t := s[n-1]\n return t }\nfunc main() { total := 0\n for r := 0; r < 30; r += 1 { total += scratchpad(64 + r) }\n print(total) }\n",
        ),
        (
            "defer-keeps-alive",
            "func main() { n := 32\n s := make([]int, n)\n s[0] = 77\n defer print(s[0])\n s[0] = 78 }\n",
        ),
    ];
    for (label, src) in programs {
        poisoned_matches_clean(src, label);
    }
}

/// The mock must actually detect unsound frees (the methodology's power):
/// a hand-written premature tcfree fails under poisoning.
#[test]
fn poisoning_detects_hand_written_unsound_free() {
    let src =
        "func main() { n := 64\n s := make([]int, n)\n s[0] = 3\n tcfree(s)\n print(s[0]) }\n";
    let compiled = compile(src, &CompileOptions::go()).unwrap();
    let cfg = RunConfig {
        poison: PoisonMode::Zero,
        ..RunConfig::deterministic(0)
    };
    let err = execute(&compiled, Setting::Go, &cfg).unwrap_err();
    assert_eq!(err, gofree::ExecError::PoisonedRead);
}
