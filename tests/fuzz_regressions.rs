//! Replays the minimized fuzz-regression corpus (`tests/regressions/`)
//! through the full differential property set, and keeps the corpus
//! honest: a short fuzzing sweep runs on every test invocation, and any
//! new divergence is ddmin-minimized and written into the corpus before
//! the test fails.

use gofree::{
    compile, execute, CompileOptions, OptLevel, PoisonMode, RunConfig, Setting, VmEngine,
};
use gofree_workloads::{fuzzgen, regressions};

/// Returns a description of the first divergence `src` exhibits, or
/// `None` when the program behaves identically under Go, GoFree,
/// poisoned GoFree, both engines, and both bytecode opt levels
/// (including their event traces). Compile errors count as "no
/// divergence" so the minimizer never walks out of the language.
fn divergence(src: &str) -> Option<String> {
    let cfg = RunConfig {
        seed: 5,
        min_heap: 128 * 1024,
        trace: true,
        ..RunConfig::default()
    };
    let go = compile(src, &CompileOptions::go()).ok()?;
    let gofree = compile(src, &CompileOptions::default()).ok()?;
    let go_out = execute(&go, Setting::Go, &cfg).ok()?;
    let gf_out = execute(&gofree, Setting::GoFree, &cfg).ok()?;
    if go_out.output != gf_out.output {
        return Some(format!(
            "output diverged: go={:?} gofree={:?}",
            go_out.output.trim(),
            gf_out.output.trim()
        ));
    }
    let poisoned = match execute(
        &gofree,
        Setting::GoFree,
        &RunConfig {
            poison: PoisonMode::Flip,
            ..cfg.clone()
        },
    ) {
        Ok(r) => r,
        Err(e) => return Some(format!("unsound free: {e}")),
    };
    if poisoned.output != go_out.output {
        return Some("poisoned output diverged".to_string());
    }
    for (compiled, setting, report) in [
        (&go, Setting::Go, &go_out),
        (&gofree, Setting::GoFree, &gf_out),
    ] {
        let tree = execute(
            compiled,
            setting,
            &RunConfig {
                engine: VmEngine::TreeWalk,
                ..cfg.clone()
            },
        )
        .ok()?;
        if tree.output != report.output || tree.time != report.time {
            return Some(format!("{setting}: engines diverge on output/time"));
        }
        if tree.trace != report.trace {
            return Some(format!("{setting}: engines diverge on the event trace"));
        }
        if let Some(trace) = &report.trace {
            if let Err(e) = trace.reconcile(&report.metrics) {
                return Some(format!("{setting}: trace does not reconcile: {e}"));
            }
        }
        // The default runs above executed the optimized stream; the
        // baseline (`--opt off`) stream must be bit-identical on every
        // observable too.
        let raw = execute(
            compiled,
            setting,
            &RunConfig {
                opt: OptLevel::Off,
                ..cfg.clone()
            },
        )
        .ok()?;
        if raw.output != report.output || raw.time != report.time || raw.steps != report.steps {
            return Some(format!(
                "{setting}: opt levels diverge on output/time/steps"
            ));
        }
        if format!("{:?}", raw.metrics) != format!("{:?}", report.metrics) {
            return Some(format!("{setting}: opt levels diverge on metrics"));
        }
        if raw.trace != report.trace {
            return Some(format!("{setting}: opt levels diverge on the event trace"));
        }
    }
    None
}

#[test]
fn corpus_replays_clean() {
    let corpus = regressions::load();
    assert!(
        corpus.len() >= 5,
        "regression corpus must stay seeded (found {})",
        corpus.len()
    );
    for (name, src) in &corpus {
        // Every corpus program must still be a valid, divergence-free
        // MiniGo program — it documents a *fixed* bug.
        compile(src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{name}: no longer compiles: {}", e.render(src)));
        if let Some(what) = divergence(src) {
            panic!("{name}: regressed: {what}\n--- program ---\n{src}");
        }
    }
}

#[test]
fn fuzz_sweep_minimizes_new_divergences_into_corpus() {
    // A short always-on sweep. On a find, the divergence is shrunk with
    // the same predicate and saved under tests/regressions/ so the repro
    // outlives the failing CI run.
    for seed in 100..140u64 {
        let src = fuzzgen::generate(seed);
        if let Some(what) = divergence(&src) {
            let min = regressions::minimize(&src, |s| divergence(s).is_some());
            let path = regressions::save(&format!("fuzz_seed_{seed}"), &min);
            panic!(
                "fuzz seed {seed} diverged ({what}); minimized repro saved to {}",
                path.display()
            );
        }
    }
}

#[test]
fn minimizer_shrinks_against_the_real_toolchain() {
    // End-to-end check of the ddmin loop with a semantic predicate: the
    // candidate must still compile *and* allocate through `make`. The
    // noise statements are droppable; the make/print skeleton is not.
    let src = "func main() {\n    a := 1\n    b := a + 2\n    s := make([]int, 8)\n    c := b * 3\n    print(len(s))\n    print(c)\n}\n";
    let keeps = |s: &str| s.contains("make(") && compile(s, &CompileOptions::default()).is_ok();
    let min = regressions::minimize(src, keeps);
    assert!(min.len() < src.len(), "minimizer failed to shrink");
    assert!(min.contains("make("));
    assert!(compile(&min, &CompileOptions::default()).is_ok());
    // The arithmetic noise is gone.
    assert!(!min.contains("b * 3"));
}
