//! Integration tests spanning all crates: front end → escape analysis →
//! instrumentation → VM → runtime, checked end to end.

use gofree::{compile, compile_and_run, execute, CompileOptions, RunConfig, Setting};
use gofree_workloads::{all, by_name, Scale};

/// The core semantic guarantee: GoFree's instrumentation never changes
/// observable behaviour, under any setting, for every workload.
#[test]
fn settings_are_observationally_equivalent() {
    for w in all(Scale::Test) {
        let cfg = RunConfig::deterministic(42);
        let outputs: Vec<String> = Setting::all()
            .into_iter()
            .map(|s| {
                compile_and_run(&w.source, s, &cfg)
                    .unwrap_or_else(|e| panic!("{} under {s}: {e}", w.name))
                    .output
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "{}", w.name);
        assert_eq!(outputs[0], outputs[2], "{}", w.name);
    }
}

/// The instrumented program is real MiniGo: it reparses and recompiles.
#[test]
fn instrumented_source_round_trips() {
    for w in all(Scale::Test) {
        let compiled = compile(&w.source, &CompileOptions::default()).expect(w.name);
        let text = compiled.instrumented_source();
        let reparsed = minigo_syntax::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {}", w.name, e.render(&text)));
        assert!(reparsed.funcs.len() >= 2, "{}", w.name);
    }
}

/// Metric sanity across every workload and setting.
#[test]
fn metric_invariants_hold() {
    for w in all(Scale::Test) {
        for setting in Setting::all() {
            let cfg = RunConfig::deterministic(7);
            let r = compile_and_run(&w.source, setting, &cfg).expect(w.name);
            let m = &r.metrics;
            assert!(
                m.freed_bytes <= m.alloced_bytes,
                "{}: freed > alloced",
                w.name
            );
            assert_eq!(
                m.freed_bytes,
                m.freed_bytes_by_source.iter().sum::<u64>(),
                "{}: per-source frees must sum to the total",
                w.name
            );
            assert!(m.free_ratio() >= 0.0 && m.free_ratio() <= 1.0);
            if setting == Setting::GoGcOff {
                assert_eq!(m.gcs, 0, "{}: GC ran while disabled", w.name);
            }
            if setting != Setting::GoFree {
                assert_eq!(m.tcfree_attempts, 0, "{}: Go must not call tcfree", w.name);
            }
            // Every heap object ends up accounted: freed by tcfree or GC.
            let reclaimed: u64 =
                m.heap_tcfreed.iter().sum::<u64>() + m.heap_gced.iter().sum::<u64>();
            assert_eq!(
                reclaimed,
                m.heap_allocs.iter().sum::<u64>(),
                "{} / {setting}: allocation accounting must balance",
                w.name
            );
        }
    }
}

/// GoFree strictly reduces GC cycles on the GC-heavy workloads while
/// keeping the output identical (the headline table 7 effect).
#[test]
fn gofree_reduces_gc_pressure() {
    for name in ["json", "scheck", "slayout"] {
        let w = by_name(name, Scale::Test).unwrap();
        let cfg = RunConfig {
            min_heap: 48 * 1024,
            ..RunConfig::deterministic(3)
        };
        let go = compile_and_run(&w.source, Setting::Go, &cfg).unwrap();
        let gofree = compile_and_run(&w.source, Setting::GoFree, &cfg).unwrap();
        assert!(go.metrics.gcs > 0, "{name}: baseline must GC");
        assert!(
            gofree.metrics.gcs <= go.metrics.gcs,
            "{name}: GoFree added GC cycles ({} vs {})",
            gofree.metrics.gcs,
            go.metrics.gcs
        );
        assert!(gofree.metrics.freed_bytes > 0, "{name}: nothing freed");
    }
}

/// Determinism: identical seeds give identical virtual time and metrics;
/// different seeds perturb time but never behaviour.
#[test]
fn seeded_determinism() {
    let w = by_name("gocompile", Scale::Test).unwrap();
    let compiled = compile(&w.source, &CompileOptions::default()).unwrap();
    let base = RunConfig::default();
    let a = execute(&compiled, Setting::GoFree, &base).unwrap();
    let b = execute(&compiled, Setting::GoFree, &base).unwrap();
    assert_eq!(a.time, b.time);
    assert_eq!(a.metrics.alloced_bytes, b.metrics.alloced_bytes);
    let other = execute(
        &compiled,
        Setting::GoFree,
        &RunConfig {
            seed: 1,
            ..base.clone()
        },
    )
    .unwrap();
    assert_eq!(a.output, other.output, "behaviour is seed-independent");
    assert_ne!(a.time, other.time, "jitter differs per seed");
}

/// The generated compile-speed corpus runs identically under both
/// compilers at several sizes (stress for the inter-procedural analysis).
#[test]
fn corpus_programs_run_identically() {
    for n in [10, 35, 60] {
        let src = gofree_workloads::corpus::generate(n);
        let cfg = RunConfig::deterministic(n as u64);
        let go = compile_and_run(&src, Setting::Go, &cfg).unwrap_or_else(|e| panic!("n={n}: {e}"));
        let gofree =
            compile_and_run(&src, Setting::GoFree, &cfg).unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert_eq!(go.output, gofree.output, "n={n}");
    }
}

/// The fig. 10 microbenchmark keeps behaviour identical across settings
/// for every c.
#[test]
fn microbenchmark_equivalence() {
    for &c in gofree_workloads::micro::C_VALUES {
        let src = gofree_workloads::micro::source(c, 32);
        let cfg = RunConfig::deterministic(c);
        let go = compile_and_run(&src, Setting::Go, &cfg).unwrap();
        let gofree = compile_and_run(&src, Setting::GoFree, &cfg).unwrap();
        assert_eq!(go.output, gofree.output, "c={c}");
    }
}

/// Language-feature torture programs run identically under Go and GoFree.
#[test]
fn feature_programs_equivalent() {
    let programs = [
        // Nested closures over scopes... no closures: nested scopes + shadowing.
        "func main() { x := 1\n { x := 2\n print(x) }\n print(x) }\n",
        // Defer ordering with arguments evaluated at defer time.
        "func main() { x := 1\n defer print(x)\n x = 2\n print(x) }\n",
        // Pointer webs with indirect stores.
        "func main() { a := 1\n b := 2\n pa := &a\n pb := &b\n ppx := &pa\n *ppx = pb\n q := *ppx\n *q = 42\n print(a, b) }\n",
        // Struct values vs pointers.
        "type V struct { x int\n s []int }\nfunc main() { v := V{1, make([]int, 2)}\n w := v\n w.x = 9\n w.s[0] = 7\n print(v.x, v.s[0]) }\n",
        // Maps with string keys and deletes.
        "func main() { m := make(map[string]int)\n for i := 0; i < 40; i += 1 { m[itoa(i%10)] = i }\n delete(m, \"3\")\n print(len(m), m[\"9\"]) }\n",
        // Multi-value destructuring through assignments.
        "func two() (int, []int) { return 7, make([]int, 3) }\nfunc main() { var a int\n var s []int\n a, s = two()\n s[0] = a\n print(a, s[0], len(s)) }\n",
        // Recursion with slices.
        "func rev(s []int, i int) int { if i >= len(s) { return 0 }\n return s[i] + rev(s, i+1) }\nfunc main() { s := make([]int, 5)\n for i := 0; i < 5; i += 1 { s[i] = i * i }\n print(rev(s, 0)) }\n",
        // Append aliasing within capacity.
        "func main() { s := make([]int, 2, 8)\n t := append(s, 5)\n u := append(t, 6)\n u[0] = 1\n print(s[0], t[2], u[3], len(u)) }\n",
    ];
    for (i, src) in programs.iter().enumerate() {
        let cfg = RunConfig::deterministic(i as u64);
        let go =
            compile_and_run(src, Setting::Go, &cfg).unwrap_or_else(|e| panic!("program {i}: {e}"));
        let gofree = compile_and_run(src, Setting::GoFree, &cfg)
            .unwrap_or_else(|e| panic!("program {i}: {e}"));
        assert_eq!(go.output, gofree.output, "program {i}");
        assert!(!go.output.is_empty(), "program {i} printed nothing");
    }
}
