//! Every sample program in `examples/programs/` must compile and behave
//! identically under Go, GoFree, and the poisoning mock.

use gofree::{compile, execute, CompileOptions, PoisonMode, RunConfig, Setting};

#[test]
fn all_sample_programs_run_identically() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("samples directory") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("mgo") {
            continue;
        }
        let name = path.display().to_string();
        let src = std::fs::read_to_string(&path).expect("readable");
        let cfg = RunConfig::deterministic(1);
        let go = compile(&src, &CompileOptions::go())
            .unwrap_or_else(|e| panic!("{name}: {}", e.render(&src)));
        let gofree = compile(&src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {}", e.render(&src)));
        let go_out = execute(&go, Setting::Go, &cfg).unwrap_or_else(|e| panic!("{name} (go): {e}"));
        let gf_out = execute(&gofree, Setting::GoFree, &cfg)
            .unwrap_or_else(|e| panic!("{name} (gofree): {e}"));
        assert_eq!(go_out.output, gf_out.output, "{name}");
        let poisoned = execute(
            &gofree,
            Setting::GoFree,
            &RunConfig {
                poison: PoisonMode::Zero,
                ..cfg
            },
        )
        .unwrap_or_else(|e| panic!("{name} (poisoned): {e}"));
        assert_eq!(go_out.output, poisoned.output, "{name} poisoned");
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected several sample programs, found {checked}"
    );
}
