//! Differential tests: the bytecode engine — at both `--opt off`
//! (baseline lowering) and `--opt full` (the optimizer tier) — must be
//! observationally identical to the tree-walking interpreter:
//! byte-identical program output, the same `tcfree` insertion counts,
//! and bit-identical runtime metrics (allocations, frees, GC cycles,
//! virtual time) on every workload, in both Go and GoFree modes.

use gofree::{
    compile, execute, CompileOptions, Compiled, OptLevel, Report, RunConfig, Setting, VmEngine,
};
use gofree_workloads::{corpus, fuzzgen, micro, Scale};

/// Runs one compiled program on the tree-walk and on the bytecode
/// engine at both opt levels, asserting every observable field of the
/// three reports matches.
fn assert_engines_agree(label: &str, compiled: &Compiled, setting: Setting, cfg: &RunConfig) {
    let run_on = |engine: VmEngine, opt: OptLevel| -> Report {
        let cfg = RunConfig {
            engine,
            opt,
            ..cfg.clone()
        };
        execute(compiled, setting, &cfg)
            .unwrap_or_else(|e| panic!("{label} ({setting}, {engine}, opt {opt}): {e}"))
    };
    let tree = run_on(VmEngine::TreeWalk, OptLevel::Off);
    for opt in [OptLevel::Off, OptLevel::Full] {
        let byte = run_on(VmEngine::Bytecode, opt);
        assert_eq!(
            tree.output, byte.output,
            "{label} ({setting}/{opt}): output"
        );
        assert_eq!(tree.time, byte.time, "{label} ({setting}/{opt}): time");
        assert_eq!(tree.steps, byte.steps, "{label} ({setting}/{opt}): steps");
        assert_eq!(
            format!("{:?}", tree.metrics),
            format!("{:?}", byte.metrics),
            "{label} ({setting}/{opt}): metrics"
        );
        assert_eq!(
            tree.site_profile, byte.site_profile,
            "{label} ({setting}/{opt}): site profile"
        );
    }
}

/// Compiles `src` both ways and checks engine agreement under Go and
/// GoFree (the two compilers produce different programs — both must
/// agree across engines), plus the GC-off setting.
fn check_source(label: &str, src: &str, cfg: &RunConfig) {
    let go = compile(src, &CompileOptions::go())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    let gofree = compile(src, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    assert!(
        gofree.free_count() == gofree.analysis.stats.to_free,
        "{label}: free_count is engine-independent"
    );
    assert_engines_agree(label, &go, Setting::Go, cfg);
    assert_engines_agree(label, &go, Setting::GoGcOff, cfg);
    assert_engines_agree(label, &gofree, Setting::GoFree, cfg);
}

#[test]
fn engines_agree_on_all_workloads() {
    for w in gofree_workloads::all(Scale::Test) {
        check_source(w.name, &w.source, &RunConfig::deterministic(7));
    }
}

#[test]
fn engines_agree_on_lowfree_workload() {
    let w = gofree_workloads::programs::lowfree(Scale::Test);
    check_source(w.name, &w.source, &RunConfig::deterministic(7));
}

#[test]
fn engines_agree_with_jitter_and_migrations() {
    // Parity must hold for any seed, including with clock jitter and
    // scheduler migrations enabled: both engines must draw the same RNG
    // sequence from the simulated runtime.
    for seed in [0xDEAD_BEEF] {
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        for w in gofree_workloads::all(Scale::Test) {
            check_source(w.name, &w.source, &cfg);
        }
    }
}

#[test]
fn engines_agree_on_map_micro() {
    for &c in micro::C_VALUES {
        let src = micro::source(c, 20_000);
        check_source(&format!("micro c={c}"), &src, &RunConfig::deterministic(3));
    }
}

#[test]
fn engines_agree_on_generated_corpus() {
    for nfuncs in [1, 4, 16] {
        let src = corpus::generate(nfuncs);
        check_source(
            &format!("corpus n={nfuncs}"),
            &src,
            &RunConfig::deterministic(11),
        );
    }
}

#[test]
fn engines_agree_on_fuzzed_programs() {
    for seed in 0..40 {
        let src = fuzzgen::generate(seed);
        let label = format!("fuzz seed={seed}");
        // Fuzzed programs may legitimately fail at run time (bounds,
        // nil); both engines must then fail identically too, so compare
        // the full result including the error rendering.
        let go = compile(&src, &CompileOptions::go())
            .unwrap_or_else(|e| panic!("{label}: {}", e.render(&src)));
        let gofree = compile(&src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{label}: {}", e.render(&src)));
        for (compiled, setting) in [(&go, Setting::Go), (&gofree, Setting::GoFree)] {
            let run_on = |engine: VmEngine, opt: OptLevel| {
                let cfg = RunConfig {
                    engine,
                    opt,
                    ..RunConfig::deterministic(5)
                };
                execute(compiled, setting, &cfg)
            };
            let tree = run_on(VmEngine::TreeWalk, OptLevel::Off);
            for opt in [OptLevel::Off, OptLevel::Full] {
                match (&tree, run_on(VmEngine::Bytecode, opt)) {
                    (Ok(t), Ok(b)) => {
                        assert_eq!(t.output, b.output, "{label} ({setting}/{opt}): output");
                        assert_eq!(t.time, b.time, "{label} ({setting}/{opt}): time");
                        assert_eq!(
                            format!("{:?}", t.metrics),
                            format!("{:?}", b.metrics),
                            "{label} ({setting}/{opt}): metrics"
                        );
                    }
                    (Err(t), Err(b)) => {
                        assert_eq!(
                            t.to_string(),
                            b.to_string(),
                            "{label} ({setting}/{opt}): error"
                        );
                    }
                    (t, b) => panic!(
                        "{label} ({setting}/{opt}): engines disagree on success: \
                         tree-walk={t:?} bytecode={b:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn opt_levels_agree_on_traces_and_folded_profiles() {
    // The optimizer tier must preserve the runtime event stream and the
    // stack-attributed profile bit-for-bit, not just the scalar
    // metrics: traced runs at `--opt off` and `--opt full` must emit
    // identical event sequences and fold to identical profiles.
    let cfg = RunConfig {
        trace: true,
        ..RunConfig::deterministic(7)
    };
    for w in gofree_workloads::all(Scale::Test) {
        let compiled = compile(&w.source, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {}", w.name, e.render(&w.source)));
        let run_at = |opt: OptLevel| -> Report {
            let cfg = RunConfig { opt, ..cfg.clone() };
            execute(&compiled, Setting::GoFree, &cfg)
                .unwrap_or_else(|e| panic!("{} (opt {opt}): {e}", w.name))
        };
        let off = run_at(OptLevel::Off);
        let full = run_at(OptLevel::Full);
        let t_off = off.trace.as_ref().expect("traced run");
        let t_full = full.trace.as_ref().expect("traced run");
        assert_eq!(
            format!("{:?}", t_off.events),
            format!("{:?}", t_full.events),
            "{}: trace events differ across opt levels",
            w.name
        );
        t_full
            .reconcile(&full.metrics)
            .unwrap_or_else(|e| panic!("{}: optimized trace reconciles: {e}", w.name));
        let p_off = gofree::Profile::build(t_off);
        let p_full = gofree::Profile::build(t_full);
        let folded_off =
            gofree::folded_stacks(&p_off, &t_off.stacks, gofree::FoldedMetric::AllocBytes);
        let folded_full =
            gofree::folded_stacks(&p_full, &t_full.stacks, gofree::FoldedMetric::AllocBytes);
        assert_eq!(
            folded_off, folded_full,
            "{}: folded profiles differ across opt levels",
            w.name
        );
        // The optimizer actually did something on real workloads, and
        // the run reports it.
        let stats = full.opt.as_ref().expect("optimized run carries stats");
        assert!(
            stats.instrs_after < stats.instrs_before,
            "{}: optimizer had no effect: {stats:?}",
            w.name
        );
        assert!(off.opt.is_none(), "{}: --opt off carries no stats", w.name);
    }
}

#[test]
fn lowered_jump_targets_are_all_patched_and_in_bounds() {
    // The lowerer resolves forward jumps through a single back-patch
    // table applied once per function; every emitted placeholder must
    // have been claimed. A leftover `usize::MAX` (or any out-of-bounds
    // target) in either the baseline or the optimized stream would mean
    // a patch was recorded against the wrong index.
    let mut srcs: Vec<(String, String)> = gofree_workloads::all(Scale::Test)
        .into_iter()
        .map(|w| (w.name.to_string(), w.source))
        .collect();
    for nfuncs in [1, 4, 16] {
        srcs.push((format!("corpus n={nfuncs}"), corpus::generate(nfuncs)));
    }
    for seed in 0..20 {
        srcs.push((format!("fuzz seed={seed}"), fuzzgen::generate(seed)));
    }
    for (label, src) in &srcs {
        for opts in [CompileOptions::go(), CompileOptions::default()] {
            let compiled =
                compile(src, &opts).unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
            for (stream, module) in [("lowered", &compiled.lowered), ("opt", &compiled.optimized)] {
                for f in &module.funcs {
                    for (pc, instr) in f.code.iter().enumerate() {
                        if let Some(t) = instr.jump_target() {
                            assert!(
                                t < f.code.len(),
                                "{label} ({stream}): {}@{pc} jumps to {t}, \
                                 out of bounds for {} instrs: {instr:?}",
                                f.name,
                                f.code.len()
                            );
                        }
                    }
                    assert!(
                        matches!(f.code.last(), Some(minigo_vm::bytecode::Instr::Ret)),
                        "{label} ({stream}): {} does not end in Ret",
                        f.name
                    );
                }
            }
        }
    }
}

#[test]
fn engines_agree_on_sample_programs() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("samples directory") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("mgo") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable");
        check_source(
            &path.display().to_string(),
            &src,
            &RunConfig::deterministic(1),
        );
        checked += 1;
    }
    assert!(checked > 0, "no sample programs found");
}
