//! Differential tests: the bytecode engine must be observationally
//! identical to the tree-walking interpreter — byte-identical program
//! output, the same `tcfree` insertion counts, and bit-identical
//! runtime metrics (allocations, frees, GC cycles, virtual time) — on
//! every workload, in both Go and GoFree modes.

use gofree::{compile, execute, CompileOptions, Compiled, Report, RunConfig, Setting, VmEngine};
use gofree_workloads::{corpus, fuzzgen, micro, Scale};

/// Runs one compiled program on both engines and asserts every
/// observable field of the reports matches.
fn assert_engines_agree(label: &str, compiled: &Compiled, setting: Setting, cfg: &RunConfig) {
    let run_on = |engine: VmEngine| -> Report {
        let cfg = RunConfig {
            engine,
            ..cfg.clone()
        };
        execute(compiled, setting, &cfg)
            .unwrap_or_else(|e| panic!("{label} ({setting}, {engine}): {e}"))
    };
    let tree = run_on(VmEngine::TreeWalk);
    let byte = run_on(VmEngine::Bytecode);
    assert_eq!(tree.output, byte.output, "{label} ({setting}): output");
    assert_eq!(tree.time, byte.time, "{label} ({setting}): virtual time");
    assert_eq!(tree.steps, byte.steps, "{label} ({setting}): steps");
    assert_eq!(
        format!("{:?}", tree.metrics),
        format!("{:?}", byte.metrics),
        "{label} ({setting}): metrics"
    );
    assert_eq!(
        tree.site_profile, byte.site_profile,
        "{label} ({setting}): site profile"
    );
}

/// Compiles `src` both ways and checks engine agreement under Go and
/// GoFree (the two compilers produce different programs — both must
/// agree across engines), plus the GC-off setting.
fn check_source(label: &str, src: &str, cfg: &RunConfig) {
    let go = compile(src, &CompileOptions::go())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    let gofree = compile(src, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    assert!(
        gofree.free_count() == gofree.analysis.stats.to_free,
        "{label}: free_count is engine-independent"
    );
    assert_engines_agree(label, &go, Setting::Go, cfg);
    assert_engines_agree(label, &go, Setting::GoGcOff, cfg);
    assert_engines_agree(label, &gofree, Setting::GoFree, cfg);
}

#[test]
fn engines_agree_on_all_workloads() {
    for w in gofree_workloads::all(Scale::Test) {
        check_source(w.name, &w.source, &RunConfig::deterministic(7));
    }
}

#[test]
fn engines_agree_on_lowfree_workload() {
    let w = gofree_workloads::programs::lowfree(Scale::Test);
    check_source(w.name, &w.source, &RunConfig::deterministic(7));
}

#[test]
fn engines_agree_with_jitter_and_migrations() {
    // Parity must hold for any seed, including with clock jitter and
    // scheduler migrations enabled: both engines must draw the same RNG
    // sequence from the simulated runtime.
    for seed in [0xDEAD_BEEF] {
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        for w in gofree_workloads::all(Scale::Test) {
            check_source(w.name, &w.source, &cfg);
        }
    }
}

#[test]
fn engines_agree_on_map_micro() {
    for &c in micro::C_VALUES {
        let src = micro::source(c, 20_000);
        check_source(&format!("micro c={c}"), &src, &RunConfig::deterministic(3));
    }
}

#[test]
fn engines_agree_on_generated_corpus() {
    for nfuncs in [1, 4, 16] {
        let src = corpus::generate(nfuncs);
        check_source(
            &format!("corpus n={nfuncs}"),
            &src,
            &RunConfig::deterministic(11),
        );
    }
}

#[test]
fn engines_agree_on_fuzzed_programs() {
    for seed in 0..40 {
        let src = fuzzgen::generate(seed);
        let label = format!("fuzz seed={seed}");
        // Fuzzed programs may legitimately fail at run time (bounds,
        // nil); both engines must then fail identically too, so compare
        // the full result including the error rendering.
        let go = compile(&src, &CompileOptions::go())
            .unwrap_or_else(|e| panic!("{label}: {}", e.render(&src)));
        let gofree = compile(&src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{label}: {}", e.render(&src)));
        for (compiled, setting) in [(&go, Setting::Go), (&gofree, Setting::GoFree)] {
            let run_on = |engine: VmEngine| {
                let cfg = RunConfig {
                    engine,
                    ..RunConfig::deterministic(5)
                };
                execute(compiled, setting, &cfg)
            };
            match (run_on(VmEngine::TreeWalk), run_on(VmEngine::Bytecode)) {
                (Ok(t), Ok(b)) => {
                    assert_eq!(t.output, b.output, "{label} ({setting}): output");
                    assert_eq!(t.time, b.time, "{label} ({setting}): time");
                    assert_eq!(
                        format!("{:?}", t.metrics),
                        format!("{:?}", b.metrics),
                        "{label} ({setting}): metrics"
                    );
                }
                (Err(t), Err(b)) => {
                    assert_eq!(t.to_string(), b.to_string(), "{label} ({setting}): error");
                }
                (t, b) => panic!(
                    "{label} ({setting}): engines disagree on success: \
                     tree-walk={t:?} bytecode={b:?}"
                ),
            }
        }
    }
}

#[test]
fn engines_agree_on_sample_programs() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("samples directory") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("mgo") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable");
        check_source(
            &path.display().to_string(),
            &src,
            &RunConfig::deterministic(1),
        );
        checked += 1;
    }
    assert!(checked > 0, "no sample programs found");
}
