//! Determinism tests for the parallel run harness: fanning a run
//! distribution across worker threads must be observationally invisible.
//! Every report field — program output, virtual time, step count,
//! runtime metrics, per-site allocation profiles — and every error must
//! be bit-identical between `jobs = 1` (sequential) and `jobs = 4`,
//! because per-run seeds derive purely from the run index and reports
//! merge back in run-index order.

use gofree::{
    compile, run_distribution, run_matrix, CompileOptions, Compiled, Report, RunConfig, Setting,
};
use gofree_workloads::{fuzzgen, Scale};

const RUNS: u64 = 6;

/// Asserts two report vectors are bit-identical in every observable.
fn assert_reports_identical(label: &str, seq: &[Report], par: &[Report]) {
    assert_eq!(seq.len(), par.len(), "{label}: run count");
    for (i, (s, p)) in seq.iter().zip(par).enumerate() {
        assert_eq!(s.output, p.output, "{label} run {i}: output");
        assert_eq!(s.time, p.time, "{label} run {i}: virtual time");
        assert_eq!(s.steps, p.steps, "{label} run {i}: steps");
        assert_eq!(
            format!("{:?}", s.metrics),
            format!("{:?}", p.metrics),
            "{label} run {i}: metrics"
        );
        assert_eq!(
            s.site_profile, p.site_profile,
            "{label} run {i}: site profile"
        );
    }
}

/// Runs the full three-setting distribution of `src` sequentially and at
/// `jobs = 4` and asserts bit-identity per setting.
fn check_source(label: &str, src: &str, base: &RunConfig) {
    let compiled: Vec<(Compiled, Setting)> = Setting::all()
        .into_iter()
        .map(|setting| {
            let c = compile(src, &setting.compile_options())
                .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
            (c, setting)
        })
        .collect();
    let cells: Vec<(&Compiled, Setting)> = compiled.iter().map(|(c, s)| (c, *s)).collect();
    let with_jobs = |jobs: usize| RunConfig {
        jobs,
        ..base.clone()
    };
    let seq = run_matrix(&cells, &with_jobs(1), RUNS)
        .unwrap_or_else(|e| panic!("{label}: sequential matrix: {e}"));
    let par = run_matrix(&cells, &with_jobs(4), RUNS)
        .unwrap_or_else(|e| panic!("{label}: parallel matrix: {e}"));
    for ((s, p), (_, setting)) in seq.iter().zip(&par).zip(&compiled) {
        assert_reports_identical(&format!("{label} ({setting})"), s, p);
    }
}

#[test]
fn parallel_matches_sequential_on_workload_corpus() {
    for w in gofree_workloads::all(Scale::Test) {
        check_source(w.name, &w.source, &RunConfig::deterministic(13));
    }
}

#[test]
fn parallel_matches_sequential_with_jitter_and_migrations() {
    // Jitter and scheduler migrations draw from the per-run RNG; the
    // parallel path must hand each run index exactly the seed the
    // sequential path would, so even noisy configurations are
    // jobs-invariant.
    let cfg = RunConfig {
        seed: 0xC0FF_EE00,
        jitter: 0.05,
        migrate_prob: 0.01,
        ..RunConfig::default()
    };
    for w in gofree_workloads::all(Scale::Test) {
        check_source(w.name, &w.source, &cfg);
    }
}

#[test]
fn parallel_matches_sequential_on_fuzzed_programs() {
    // Fuzzed programs may legitimately fail at run time (bounds, nil);
    // the parallel path must then surface the identical first-by-index
    // error the sequential path does.
    for seed in 0..20 {
        let src = fuzzgen::generate(seed);
        let label = format!("fuzz seed={seed}");
        let compiled = compile(&src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{label}: {}", e.render(&src)));
        let run = |jobs: usize| {
            let cfg = RunConfig {
                jobs,
                ..RunConfig::deterministic(17)
            };
            run_distribution(&compiled, Setting::GoFree, &cfg, RUNS)
        };
        match (run(1), run(4)) {
            (Ok(seq), Ok(par)) => assert_reports_identical(&label, &seq, &par),
            (Err(e_seq), Err(e_par)) => assert_eq!(
                e_seq.to_string(),
                e_par.to_string(),
                "{label}: error mismatch"
            ),
            (seq, par) => panic!(
                "{label}: sequential {:?} vs parallel {:?} disagree on success",
                seq.map(|r| r.len()),
                par.map(|r| r.len())
            ),
        }
    }
}

#[test]
fn oversubscribed_jobs_are_clamped_and_identical() {
    // More workers than (settings × runs) cells must not change anything.
    let w = gofree_workloads::by_name("json", Scale::Test).expect("json workload");
    let compiled = compile(&w.source, &CompileOptions::default()).expect("compiles");
    let run = |jobs: usize| {
        let cfg = RunConfig {
            jobs,
            ..RunConfig::deterministic(23)
        };
        run_distribution(&compiled, Setting::GoFree, &cfg, 3).expect("runs")
    };
    assert_reports_identical("jobs=64", &run(1), &run(64));
}
