//! Properties of the call-stack-attributed allocation profiler, for the
//! workload corpus and a fuzzed cohort, on both VM engines:
//!
//! * [`gofree::Profile::reconcile`] matches the run's [`Metrics`]
//!   field-exactly (alloc/free/bail/sweep counts and bytes);
//! * profiling is invisible — a profiled run's report is bit-identical
//!   to an unprofiled one in every observable field;
//! * the interned stack table and the folded profiles are bit-identical
//!   across the tree-walk and bytecode engines;
//! * folded profiles are `--jobs`-invariant;
//! * the gctrace pacing log has exactly one line per GC cycle, and heap
//!   snapshots cover every GC safepoint plus finalization;
//! * a capped trace refuses to reconcile (loud truncation) at both the
//!   trace and the profile layer.

use gofree::{
    compile, execute, folded_stacks, gctrace_lines, heap_snapshot_table, profile_report,
    run_distribution, CompileOptions, Compiled, FoldedMetric, Profile, Report, RunConfig, Setting,
    VmEngine,
};
use gofree_workloads::{corpus, fuzzgen, Scale};
use std::collections::HashMap;

/// Evaluation-style config: tight GC trigger, tracing on.
fn traced_cfg(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        min_heap: 128 * 1024,
        trace: true,
        ..RunConfig::default()
    }
}

/// Runs one compiled setting, builds its profile, and checks exact
/// reconciliation against the metrics plus the internal consistency of
/// the derived artifacts. Returns the report and its profile.
fn run_profiled(
    label: &str,
    compiled: &Compiled,
    setting: Setting,
    cfg: &RunConfig,
) -> (Report, Profile) {
    let report = execute(compiled, setting, cfg)
        .unwrap_or_else(|e| panic!("{label} ({setting}, {:?}): {e}", cfg.engine));
    let trace = report
        .trace
        .as_ref()
        .unwrap_or_else(|| panic!("{label} ({setting}): traced run carries no trace"));
    let profile = Profile::build(trace);
    profile
        .reconcile(&report.metrics)
        .unwrap_or_else(|e| panic!("{label} ({setting}, {:?}): {e}", cfg.engine));

    // One pacing line per GC cycle, paired from the event stream.
    let pacing = gctrace_lines(trace);
    assert_eq!(
        pacing.len() as u64,
        report.metrics.gcs,
        "{label} ({setting}): gctrace line count != Metrics::gcs"
    );
    // One snapshot at every GC safepoint plus one at finalization.
    assert_eq!(
        trace.snapshots.len() as u64,
        report.metrics.gcs + 1,
        "{label} ({setting}): snapshot count != gcs + finalize"
    );
    assert!(
        !heap_snapshot_table(trace).is_empty(),
        "{label} ({setting}): snapshot table rendered empty"
    );
    // Drag histograms cover exactly the frees and sweeps that happened.
    let (mut tcfreed, mut swept) = (0u64, 0u64);
    for d in &profile.sites {
        tcfreed += d.tcfree.count();
        swept += d.sweep.count();
    }
    let totals = profile.totals();
    assert_eq!(tcfreed, totals.frees, "{label} ({setting}): drag vs frees");
    assert_eq!(swept, totals.swept, "{label} ({setting}): drag vs sweeps");
    (report, profile)
}

/// The full property set for one source program.
fn check_program(label: &str, src: &str) {
    let go = compile(src, &CompileOptions::go())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    let gofree = compile(src, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{label}: {}", e.render(src)));
    for (compiled, setting) in [
        (&go, Setting::Go),
        (&go, Setting::GoGcOff),
        (&gofree, Setting::GoFree),
    ] {
        let cfg = traced_cfg(11);

        // Reconciliation + invisibility on the default (bytecode) engine.
        let (profiled, profile) = run_profiled(label, compiled, setting, &cfg);
        let plain = execute(
            compiled,
            setting,
            &RunConfig {
                trace: false,
                ..cfg.clone()
            },
        )
        .unwrap_or_else(|e| panic!("{label} ({setting}): {e}"));
        assert_eq!(profiled.output, plain.output, "{label} ({setting})");
        assert_eq!(profiled.time, plain.time, "{label} ({setting})");
        assert_eq!(profiled.steps, plain.steps, "{label} ({setting})");
        assert_eq!(
            format!("{:?}", profiled.metrics),
            format!("{:?}", plain.metrics),
            "{label} ({setting}): profiling changed metrics"
        );

        // Engine identity: same stack table, same folded profiles, same
        // rendered report.
        let tree_cfg = RunConfig {
            engine: VmEngine::TreeWalk,
            ..cfg.clone()
        };
        let (tree, tree_profile) = run_profiled(label, compiled, setting, &tree_cfg);
        let (bt, tt) = (
            profiled.trace.as_ref().unwrap(),
            tree.trace.as_ref().unwrap(),
        );
        assert_eq!(
            bt.stacks, tt.stacks,
            "{label} ({setting}): engines intern different stack tables"
        );
        for metric in [
            FoldedMetric::AllocBytes,
            FoldedMetric::AllocCount,
            FoldedMetric::FreedBytes,
            FoldedMetric::GarbageBytes,
        ] {
            assert_eq!(
                folded_stacks(&profile, &bt.stacks, metric),
                folded_stacks(&tree_profile, &tt.stacks, metric),
                "{label} ({setting}): folded profiles differ across engines"
            );
        }
        let labels = HashMap::new();
        assert_eq!(
            profile_report(&profile, bt, &labels),
            profile_report(&tree_profile, tt, &labels),
            "{label} ({setting}): profile reports differ across engines"
        );
    }
}

#[test]
fn workload_corpus_profiles_on_both_engines() {
    for w in gofree_workloads::all(Scale::Test) {
        check_program(w.name, &w.source);
    }
}

#[test]
fn generated_corpus_profiles() {
    for nfuncs in [3, 10] {
        check_program(&format!("corpus n={nfuncs}"), &corpus::generate(nfuncs));
    }
}

#[test]
fn fuzzed_programs_profile() {
    // 20 generator seeds; every generated program must uphold the full
    // property set (reconcile, invisibility, engine identity).
    for seed in 0..20u64 {
        let src = fuzzgen::generate(seed);
        check_program(&format!("fuzz seed={seed}"), &src);
    }
}

#[test]
fn folded_profiles_are_jobs_invariant() {
    let w = gofree_workloads::by_name("json", Scale::Test).expect("json workload");
    let compiled = compile(&w.source, &CompileOptions::default()).expect("compiles");
    let runs = 6;
    let run = |jobs| {
        run_distribution(
            &compiled,
            Setting::GoFree,
            &RunConfig {
                jobs,
                ..traced_cfg(3)
            },
            runs,
        )
        .expect("distribution runs")
    };
    let (seq, par) = (run(1), run(4));
    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        let (st, pt) = (s.trace.as_ref().unwrap(), p.trace.as_ref().unwrap());
        let (sp, pp) = (Profile::build(st), Profile::build(pt));
        sp.reconcile(&s.metrics)
            .unwrap_or_else(|e| panic!("run {i}: {e}"));
        assert_eq!(
            folded_stacks(&sp, &st.stacks, FoldedMetric::AllocBytes),
            folded_stacks(&pp, &pt.stacks, FoldedMetric::AllocBytes),
            "run {i}: folded profile differs across --jobs"
        );
    }
}

#[test]
fn capped_trace_fails_reconciliation_loudly() {
    let w = gofree_workloads::by_name("json", Scale::Test).expect("json workload");
    let compiled = compile(&w.source, &CompileOptions::default()).expect("compiles");
    let full = execute(&compiled, Setting::GoFree, &traced_cfg(11)).expect("runs");
    let events = full.trace.as_ref().unwrap().events.len();
    assert!(events > 16, "workload too small to truncate meaningfully");

    let capped = execute(
        &compiled,
        Setting::GoFree,
        &RunConfig {
            trace_cap: Some(16),
            ..traced_cfg(11)
        },
    )
    .expect("capped run still executes");
    // Truncation is observationally invisible to the program...
    assert_eq!(capped.output, full.output);
    assert_eq!(capped.time, full.time);
    let trace = capped.trace.as_ref().unwrap();
    assert_eq!(trace.events.len(), 16);
    assert_eq!(trace.events_dropped as usize, events - 16);
    // ...but both reconciliation layers refuse the partial stream.
    let err = trace
        .reconcile(&capped.metrics)
        .expect_err("truncated trace must not reconcile");
    assert!(err.contains("truncated"), "unhelpful error: {err}");
    let err = Profile::build(trace)
        .reconcile(&capped.metrics)
        .expect_err("truncated profile must not reconcile");
    assert!(err.contains("truncated"), "unhelpful error: {err}");
}
