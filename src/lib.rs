//! Umbrella crate for the GoFree reproduction workspace.
//!
//! This crate re-exports the public surface of every subsystem so that the
//! workspace-level `examples/` and `tests/` can exercise the whole pipeline
//! through one import. The real functionality lives in the member crates:
//!
//! * [`minigo_syntax`] — the MiniGo front end (lexer, parser, AST).
//! * [`minigo_escape`] — Go's escape analysis plus the GoFree extensions.
//! * [`minigo_runtime`] — the TCMalloc-style heap, GC, and `tcfree` family.
//! * [`minigo_vm`] — the interpreter that executes instrumented programs.
//! * [`gofree`] — the high-level compile/run facade and experiment drivers.
//! * [`gofree_workloads`] — the subject-program analogues from the paper.

pub use gofree;
pub use gofree_workloads;
pub use minigo_escape;
pub use minigo_runtime;
pub use minigo_syntax;
pub use minigo_vm;
