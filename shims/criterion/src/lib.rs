//! # criterion (offline shim)
//!
//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness, implementing the surface this workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`, and
//! `Bencher::{iter, iter_with_setup}`.
//!
//! The build environment has no crates.io access, so the real criterion
//! cannot be fetched. The shim keeps `cargo bench` working offline with a
//! plain wall-clock sampler: warm up, pick an iteration count that makes
//! one sample last `measurement_time / sample_size`, then report
//! min/median/max nanoseconds per iteration. There are no plots, no
//! state, and no statistical outlier analysis.
//!
//! Like the real crate, running the harness without a `--bench` CLI flag
//! (as `cargo test` does) executes every benchmark exactly once as a
//! smoke test instead of measuring it.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; holds the sampling configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies CLI conventions: without `--bench` (e.g. under
    /// `cargo test`) each benchmark runs once instead of being sampled.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = !std::env::args().any(|a| a == "--bench");
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: self.clone(),
            name: name.to_string(),
            parent: self,
        }
    }
}

/// A group of related benchmarks sharing (overridable) configuration.
pub struct BenchmarkGroup<'a> {
    cfg: Criterion,
    name: String,
    #[allow(dead_code)]
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Overrides the warm-up budget for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut cfg = self.cfg.clone();
        run_one(&mut cfg, &label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let mut cfg = self.cfg.clone();
        run_one(&mut cfg, &label, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: function name plus a displayed parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `new("gofree", 8)` displays as `gofree/8`.
    pub fn new(function: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{param}"))
    }
}

/// Passed to the benchmark closure; drives the timing loop.
pub struct Bencher {
    cfg: Criterion,
    /// ns-per-iteration samples collected by `iter*`.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.cfg.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm = Instant::now();
        let mut warm_iters = 0u64;
        while warm.elapsed() < self.cfg.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = warm.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let target_sample_ns =
            self.cfg.measurement_time.as_nanos() as f64 / self.cfg.sample_size as f64;
        let iters = (target_sample_ns / est_ns.max(1.0)).ceil().max(1.0) as u64;
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` only, re-running `setup` (untimed) before every
    /// iteration.
    pub fn iter_with_setup<S, I, R, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if self.cfg.test_mode {
            black_box(routine(setup()));
            return;
        }
        let warm = Instant::now();
        while warm.elapsed() < self.cfg.warm_up_time {
            black_box(routine(setup()));
        }
        // One timed iteration per sample: setup dominates wall clock, so
        // batching would starve the sample count.
        for _ in 0..self.cfg.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(cfg: &mut Criterion, label: &str, f: F) {
    let mut b = Bencher {
        cfg: cfg.clone(),
        samples: Vec::new(),
    };
    f(&mut b);
    if cfg.test_mode {
        println!("{label}: smoke-tested (1 iteration)");
        return;
    }
    let mut s = b.samples;
    if s.is_empty() {
        println!("{label}: no samples");
        return;
    }
    s.sort_by(|a, b| a.total_cmp(b));
    let min = s[0];
    let max = s[s.len() - 1];
    let median = s[s.len() / 2];
    println!(
        "{label:<44} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group, mirroring criterion's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg.configure_from_args();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the harness `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn sampling_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.test_mode = false;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("id", 1), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn id_formats_with_param() {
        assert_eq!(BenchmarkId::new("f", 42).0, "f/42");
    }
}
