//! # proptest (offline shim)
//!
//! A minimal, dependency-free stand-in for the [`proptest`] crate,
//! implementing exactly the API surface this workspace's property tests
//! use: `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `any::<T>()`, range and tuple strategies, `prop_map`, and
//! `proptest::collection::vec`.
//!
//! The build environment has no crates.io access, so the real proptest
//! cannot be fetched; this shim keeps the property tests compiling and
//! running offline. Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the plain
//!   `assert!`/`assert_eq!` message instead of a minimized counterexample.
//! - **Fixed determinism.** Each test derives its RNG seed from its own
//!   name, so every run explores the same cases. That makes failures
//!   reproducible without a persistence file.
//! - Only the strategy combinators listed above exist.
//!
//! [`proptest`]: https://docs.rs/proptest

/// Test-runner plumbing: the per-test RNG and run configuration.
pub mod test_runner {
    /// SplitMix64; small, seedable, and good enough to drive case
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash), so each
        /// test gets a distinct but stable stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `0..width` (`width > 0`).
        pub fn below(&mut self, width: u64) -> u64 {
            self.next_u64() % width
        }
    }

    /// How many cases `proptest!` runs per test.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// concrete value directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy mapped through a function.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union; panics if `alts` is empty.
        pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
            Union(alts)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let draw = rng.next_u64() as u128 % width;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = rng.next_u64() as u128 % width;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A `Vec` strategy with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with length in `len` (half-open, like
    /// real proptest's `vec(elem, a..b)`).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Mirrors real proptest's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut prop_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _prop_case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Asserts within a property body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-1i32..=2).generate(&mut rng);
            assert!((-1..=2).contains(&w));
            let f = (1f64..50.0).generate(&mut rng);
            assert!((1.0..50.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::test_runner::TestRng::for_test("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_args(x in 0u64..100, pair in (0u32..4, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4);
        }
    }

    proptest! {
        /// Default config path.
        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..5).prop_map(|x| x as i64),
            (10u64..15).prop_map(|x| -(x as i64)),
        ]) {
            prop_assert!((0..5).contains(&v) || (-14..=-10).contains(&v));
        }
    }
}
