#!/usr/bin/env bash
# Regenerates every experiment in the paper's evaluation (plus the
# extension studies) into results/. Takes ~15 minutes at full scale;
# pass --quick to smoke-test in under a minute.
set -euo pipefail
cd "$(dirname "$0")/.."
ARGS=("$@")
cargo build --workspace --release
mkdir -p results
for bin in table3 table7 table8 table9 fig10 fig11 compile_speed \
           robustness ablation inlining batching gogc_sweep summary fuzz; do
  echo "== $bin =="
  cargo run --release -q -p gofree-bench --bin "$bin" -- "${ARGS[@]}" \
    | tee "results/$bin.txt"
done
echo "== engines =="
cargo run --release -q -p gofree-bench --bin engines -- "${ARGS[@]}" \
  | tee results/vm_engines.txt
echo "All experiments regenerated into results/."
