#!/usr/bin/env bash
# Regenerates every experiment in the paper's evaluation (plus the
# extension studies) into results/. Takes ~15 minutes at full scale;
# pass --quick to smoke-test in under a minute.
#
# Runs fan out across JOBS worker threads (default: all host cores, or
# GOFREE_JOBS); reported numbers are identical for any value
# (tests/parallel.rs), only wall-clock changes.
set -euo pipefail
cd "$(dirname "$0")/.."
ARGS=("$@")
CORES="$(nproc 2>/dev/null || echo 1)"
JOBS="${GOFREE_JOBS:-$CORES}"
HEADER="# host: $CORES core(s), jobs=$JOBS"
cargo build --workspace --release
mkdir -p results
for bin in table3 table7 table8 table9 fig10 fig11 compile_speed \
           robustness ablation inlining batching gogc_sweep summary fuzz \
           audit trace profile liveness collectors service; do
  echo "== $bin =="
  { echo "$HEADER"
    cargo run --release -q -p gofree-bench --bin "$bin" -- \
      --jobs "$JOBS" "${ARGS[@]}"
  } | tee "results/$bin.txt"
done
echo "== table7 (gen collector) =="
{ echo "$HEADER"
  cargo run --release -q -p gofree-bench --bin table7 -- \
    --jobs "$JOBS" --collector gen "${ARGS[@]}"
} | tee results/table7_gen.txt
echo "== engines =="
{ echo "$HEADER"
  cargo run --release -q -p gofree-bench --bin engines -- \
    --jobs "$JOBS" "${ARGS[@]}"
} | tee results/vm_engines.txt
echo "== parallel_harness =="
{ echo "$HEADER"
  cargo run --release -q -p gofree-bench --bin parallel_harness -- "${ARGS[@]}"
} | tee results/parallel_harness.txt
echo "All experiments regenerated into results/."
