//! A domain scenario: a JSON-parsing service loop (the paper's
//! highest-benefit subject) measured under the three settings of §6.4,
//! printing the table 5 metrics for each.
//!
//! ```sh
//! cargo run --release --example json_service
//! ```

use gofree::{compile, run_distribution, stdev, RunConfig, Setting};
use gofree_workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = by_name("json", Scale::Full).expect("json workload exists");
    let base = RunConfig {
        min_heap: 128 * 1024,
        ..RunConfig::default()
    };
    let runs = 15;
    println!("JSON service analogue: {} runs per setting\n", runs);
    println!(
        "{:<9} {:>12} {:>8} {:>6} {:>12} {:>11} {:>7} {:>12}",
        "setting", "time", "stdev", "GCs", "alloced", "freed", "ratio", "maxheap"
    );
    let mut means = Vec::new();
    for setting in Setting::all() {
        let compiled = compile(&workload.source, &setting.compile_options())?;
        let reports = run_distribution(&compiled, setting, &base, runs)?;
        let times: Vec<f64> = reports.iter().map(|r| r.time as f64).collect();
        let mean_time = times.iter().sum::<f64>() / times.len() as f64;
        let last = reports.last().expect("ran");
        println!(
            "{:<9} {:>12.0} {:>8.0} {:>6} {:>12} {:>11} {:>6.0}% {:>12}",
            setting.to_string(),
            mean_time,
            stdev(&times),
            last.metrics.gcs,
            last.metrics.alloced_bytes,
            last.metrics.freed_bytes,
            last.metrics.free_ratio() * 100.0,
            last.metrics.maxheap,
        );
        means.push(mean_time);
    }
    let (go, gofree, gcoff) = (means[0], means[1], means[2]);
    println!(
        "\ntime ratio GoFree/Go = {:.1}%   GC-time ratio = {:.1}%",
        100.0 * gofree / go,
        100.0 * (gofree - gcoff) / (go - gcoff),
    );
    println!("(paper's json row: time 94%, GC time 55%, GCs 77%, free ratio 23%)");
    Ok(())
}
