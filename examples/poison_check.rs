//! Demonstrates the §6.8 robustness methodology: run a program whose
//! `tcfree` calls are replaced by a memory-poisoning mock. A sound
//! analysis is invisible; an unsound free (here: a hand-written premature
//! `tcfree`) is caught as a poisoned read.
//!
//! ```sh
//! cargo run --example poison_check
//! ```

use gofree::{compile, execute, CompileOptions, PoisonMode, RunConfig, Setting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sound = r#"
func sum(n int) int {
    s := make([]int, n)
    for i := 0; i < n; i += 1 {
        s[i] = i
    }
    t := 0
    for i := 0; i < n; i += 1 {
        t += s[i]
    }
    x := t
    return x
}

func main() {
    print(sum(500))
}
"#;
    // A deliberately unsound program: the hand-written tcfree frees the
    // slice while it is still in use.
    let unsound = r#"
func main() {
    n := 500
    s := make([]int, n)
    for i := 0; i < n; i += 1 {
        s[i] = i
    }
    tcfree(s)
    print(s[250])
}
"#;

    let poisoned = RunConfig {
        poison: PoisonMode::Zero,
        ..RunConfig::deterministic(0)
    };

    let compiled = compile(sound, &CompileOptions::default())?;
    println!(
        "sound program, GoFree-inserted frees, poison mode: {:?}",
        execute(&compiled, Setting::GoFree, &poisoned).map(|r| r.output.trim().to_string())
    );

    let compiled = compile(unsound, &CompileOptions::go())?;
    println!(
        "unsound hand-written tcfree, poison mode:          {:?}",
        execute(&compiled, Setting::Go, &poisoned).map(|r| r.output.trim().to_string())
    );
    println!("\nThe first run is unaffected; the second fails with a poisoned read —");
    println!("this is how the paper validates that GoFree never frees live memory.");
    Ok(())
}
