//! A tour of the escape analysis on the paper's own examples: fig. 1
//! (completeness), fig. 3 (stack allocation vs explicit deallocation),
//! fig. 6 (nested scopes), and fig. 7 (content tags across calls).
//!
//! ```sh
//! cargo run --example escape_tour
//! ```

use std::collections::HashMap;

use minigo_escape::{
    analyze, build_func_graph, instrument, points_to, solve, AnalyzeOptions, BuildOptions,
    SolveConfig,
};
use minigo_syntax::{frontend, print_program};

fn banner(title: &str) {
    println!("\n{}", "=".repeat(66));
    println!("{title}");
    println!("{}", "=".repeat(66));
}

fn show_instrumented(src: &str) {
    let (program, mut res, types) = frontend(src).expect("compiles");
    let analysis = analyze(&program, &res, &types, &AnalyzeOptions::default());
    let out = instrument(&program, &mut res, &analysis);
    println!("{}", print_program(&out));
}

fn main() {
    banner("fig. 3 — stack allocation vs explicit deallocation");
    let fig3 = r#"
func analyses(n int) {
    s1 := make([]int, 335)
    s1[0] = 1
    for i := 1; i < n; i += 1 {
        s2 := make([]int, i)
        s2[0] = i
    }
}

func main() {
    analyses(8)
}
"#;
    println!("make1 (constant size, non-escaping) is stack allocated;");
    println!("make2 (dynamic size) is heap allocated and gets a tcfree:\n");
    show_instrumented(fig3);

    banner("fig. 1 — the escape graph and completeness analysis");
    let fig1 = r#"
type Big struct {
    fat []int
    p *int
}

func fig1(c int, d int) *int {
    s := make([]int, 10)
    bigObj := Big{s, &c}
    pc := &c
    pd := &d
    ppd := &pd
    *ppd = pc
    pd2 := *ppd
    return pd2
}

func main() {
    x := 0
    x = x
}
"#;
    let (program, res, types) = frontend(fig1).expect("compiles");
    let func = program.func("fig1").unwrap().clone();
    let mut fg = build_func_graph(
        &program,
        &res,
        &types,
        &func,
        &HashMap::new(),
        &BuildOptions::default(),
    );
    solve(&mut fg.graph, &SolveConfig::default());
    println!("solved properties per location (table 1):\n");
    for id in fg.graph.ids() {
        let l = fg.graph.loc(id);
        if matches!(l.kind, minigo_escape::LocKind::Var(_)) {
            let pts: Vec<String> = points_to(&fg.graph, id)
                .into_iter()
                .map(|p| fg.graph.loc(p).name.clone())
                .collect();
            println!(
                "{:<8} HeapAlloc={:<5} Exposes={:<5} Incomplete={:<5} Outlived={:<5} PointsTo={{{}}}",
                l.name,
                l.heap_alloc,
                l.exposes,
                l.incomplete,
                l.outlived,
                pts.join(", ")
            );
        }
    }

    banner("fig. 6 — nested scopes: s1 and s2 freeable, s3 outlived");
    let fig6 = r#"
func nested(n int) {
    var keep []int
    {
        s1 := make([]int, n)
        s1[0] = 1
        {
            s2 := make([]int, n)
            s2[0] = 2
        }
        {
            s3 := make([]int, n)
            keep = s3
        }
    }
    keep[0] = 3
}

func main() {
    nested(6)
}
"#;
    show_instrumented(fig6);

    banner("fig. 7 — content tags: fresh freed in the caller, old is not");
    let fig7 = r#"
func partialNew(ps *[]int) (r0 []int, r1 []int) {
    pps := &ps
    *pps = ps
    made := make([]int, 3)
    made[0] = 1
    return made, **pps
}

func main() {
    s := make([]int, 5)
    fresh, old := partialNew(&s)
    fresh[0] = old[0]
}
"#;
    show_instrumented(fig7);
    println!("(`fresh` receives the callee's make through the content tag and is freed;");
    println!(" `old` is incomplete — the callee's indirect store — and is left to GC.)");
}
