//! Quickstart: compile a MiniGo program with GoFree, inspect the inserted
//! `tcfree` calls, and compare a GoFree run against plain Go.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gofree::{compile, execute, CompileOptions, RunConfig, Setting};

const PROGRAM: &str = r#"
func process(n int) int {
    scratch := make([]int, n)
    for i := 0; i < n; i += 1 {
        scratch[i] = i * i
    }
    seen := make(map[int]int)
    for i := 0; i < n; i += 1 {
        seen[scratch[i]%64] += 1
    }
    x := scratch[n-1] + len(seen)
    return x
}

func main() {
    total := 0
    for round := 0; round < 200; round += 1 {
        total += process(150 + round%50)
    }
    print(total)
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile with GoFree: escape analysis + explicit-deallocation
    // analysis + tcfree instrumentation.
    let gofree = compile(PROGRAM, &CompileOptions::default())?;
    println!("=== instrumented program (note the tcfree calls) ===\n");
    println!("{}", gofree.instrumented_source());

    // Run both compilers' outputs on the simulated runtime.
    let cfg = RunConfig {
        min_heap: 128 * 1024,
        ..RunConfig::default()
    };
    let go = compile(PROGRAM, &CompileOptions::go())?;
    let go_run = execute(&go, Setting::Go, &cfg)?;
    let gofree_run = execute(&gofree, Setting::GoFree, &cfg)?;
    assert_eq!(go_run.output, gofree_run.output, "same program behaviour");

    println!("=== run comparison ===\n");
    println!("output: {}", go_run.output.trim());
    println!("{:<22} {:>14} {:>14}", "metric", "Go", "GoFree");
    let m = |label: &str, a: u64, b: u64| {
        println!("{label:<22} {a:>14} {b:>14}");
    };
    m("virtual time", go_run.time, gofree_run.time);
    m("GC cycles", go_run.metrics.gcs, gofree_run.metrics.gcs);
    m(
        "heap allocated (B)",
        go_run.metrics.alloced_bytes,
        gofree_run.metrics.alloced_bytes,
    );
    m(
        "explicitly freed (B)",
        go_run.metrics.freed_bytes,
        gofree_run.metrics.freed_bytes,
    );
    m(
        "peak footprint (B)",
        go_run.metrics.maxheap,
        gofree_run.metrics.maxheap,
    );
    println!(
        "\nGoFree freed {:.0}% of allocated heap memory and ran {} GC cycles fewer.",
        gofree_run.metrics.free_ratio() * 100.0,
        go_run.metrics.gcs - gofree_run.metrics.gcs,
    );
    Ok(())
}
